//! A1 — ablations: benchmarks the minimal-dominating-set reduction under the
//! different candidate orders and regenerates both ablation tables.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rn_experiments::experiments::ablation;
use rn_experiments::{ExperimentConfig, GraphFamily};
use rn_graph::algorithms::ReductionOrder;
use rn_labeling::lambda;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("a1_reduction_order");
    group.sample_size(15);
    let g = GraphFamily::GnpSparse.generate(256, 1);
    for (name, order) in [
        ("forward", ReductionOrder::Forward),
        ("reverse", ReductionOrder::Reverse),
        ("random", ReductionOrder::Random(7)),
    ] {
        group.bench_with_input(BenchmarkId::new(name, g.node_count()), &g, |b, g| {
            b.iter(|| std::hint::black_box(lambda::construct_with_order(g, 0, order).unwrap()));
        });
    }
    group.finish();

    let cfg = ExperimentConfig {
        sizes: vec![16, 48],
        seeds: vec![1],
        threads: rn_radio::batch::default_threads(),
    };
    for t in ablation::run(&cfg) {
        println!("\n{t}");
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
