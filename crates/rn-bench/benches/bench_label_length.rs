//! E4 — label length / message size comparison: benchmarks assigning each
//! scheme and regenerates the comparison table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rn_experiments::experiments::label_length;
use rn_experiments::{ExperimentConfig, GraphFamily};
use rn_labeling::scheme::{LabelingScheme, SchemeKind};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_label_length");
    group.sample_size(20);
    let g = GraphFamily::GnpSparse.generate(256, 1);
    for scheme in SchemeKind::ALL {
        let id = BenchmarkId::new(scheme.name(), g.node_count());
        group.bench_with_input(id, &g, |b, g| {
            b.iter(|| std::hint::black_box(scheme.assign(g, 0).unwrap()));
        });
    }
    group.finish();

    let cfg = ExperimentConfig {
        sizes: vec![16, 64, 256],
        seeds: vec![1],
        threads: rn_radio::batch::default_threads(),
    };
    println!("\n{}", label_length::run(&cfg));
}

criterion_group!(benches, bench);
criterion_main!(benches);
