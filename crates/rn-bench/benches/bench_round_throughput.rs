//! Round-throughput benchmark for the simulator engines, with a JSON
//! emitter so the perf trajectory is recorded across PRs.
//!
//! Measures rounds/second of Algorithm B (λ labels) on sparse-transmission
//! workloads, n = 10 000 with tracing off, on all three engines: the default
//! transmitter-centric engine, the retained listener-centric reference
//! engine (`Engine::ListenerCentric` — the pre-change delivery algorithm,
//! verbatim), and the event-driven frontier engine
//! (`Engine::EventDriven` — wake-hint driven, with silent-round elision).
//! Results including both speedup ratios go to `BENCH_simulator.json` at
//! the workspace root.
//!
//! Workloads: the original ladder — a path, a uniform random tree, and
//! G(n, p) graphs of average degree 8 and 32 — plus one case per family the
//! topology registry added (torus, hypercube, caterpillar, lollipop,
//! star-of-cliques, clustered G(n, p), unit-disk, degree-capped), drawn
//! through `TopologyFamily::generate` so the benches measure exactly the
//! instances the scenario sweeps run on. Every run executes `2n`
//! rounds — the active broadcast wave plus the quiet tail — because the
//! paper's protocols spend most of a long execution in rounds with very few
//! (often zero) transmitters, which is precisely where the two engines
//! differ: the listener-centric engine scans every listener's whole
//! neighbourhood even in a silent round (O(Σ deg) per round), while the
//! transmitter-centric engine walks only the transmitters' CSR rows. On
//! degree-2 paths that scan is nearly free, so per-node protocol driving
//! bounds the achievable speedup (Amdahl); on the degree-32 workload the
//! scan dominates and the speedup exceeds 5×.
//!
//! Modes:
//! * default — full run: n = 10 000, 2n rounds per sample, 3 samples;
//! * `--quick` (or `BENCH_QUICK=1`) — CI smoke: n = 2 000, 1 sample;
//! * `--test` — one tiny iteration, no JSON (cargo's bench-test mode).
//!
//! The custom harness (not criterion) exists because the emitter needs to
//! run after all measurements and write one consolidated file.

use rn_broadcast::algo_b::BNode;
use rn_broadcast::gossip::GossipNode;
use rn_broadcast::multi::MultiNode;
use rn_graph::generators::TopologyFamily;
use rn_graph::{generators, Graph};
use rn_labeling::{gossip, lambda, multi};
use rn_radio::{Engine, RadioNode, Simulator};
use std::sync::Arc;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

struct Config {
    n: usize,
    samples: usize,
    quick: bool,
    test_mode: bool,
}

struct Measurement {
    workload: &'static str,
    scheme: &'static str,
    n: usize,
    avg_degree: f64,
    rounds_per_sample: u64,
    fast_rounds_per_sec: f64,
    reference_rounds_per_sec: f64,
    event_rounds_per_sec: f64,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.fast_rounds_per_sec / self.reference_rounds_per_sec
    }

    fn event_speedup(&self) -> f64 {
        self.event_rounds_per_sec / self.reference_rounds_per_sec
    }
}

fn config() -> Config {
    let args: Vec<String> = std::env::args().collect();
    let test_mode = args.iter().any(|a| a == "--test");
    let quick = test_mode
        || args.iter().any(|a| a == "--quick")
        || std::env::var("BENCH_QUICK").is_ok_and(|v| v == "1");
    let n = if test_mode {
        200
    } else if quick {
        2_000
    } else {
        10_000
    };
    Config {
        n,
        samples: if quick { 1 } else { 3 },
        quick,
        test_mode,
    }
}

/// Median rounds/second over `samples` runs of `rounds` rounds of the
/// protocol produced by `make_nodes`, with the given engine, tracing off.
fn measure<N: RadioNode>(
    graph: &Arc<Graph>,
    make_nodes: impl Fn() -> Vec<N>,
    engine: Engine,
    rounds: u64,
    samples: usize,
) -> f64 {
    let mut rates: Vec<f64> = (0..samples)
        .map(|_| {
            let mut sim = Simulator::new(Arc::clone(graph), make_nodes())
                .without_trace()
                .with_engine(engine);
            let start = Instant::now();
            sim.run_rounds(rounds);
            let secs = start.elapsed().as_secs_f64();
            std::hint::black_box(sim.current_round());
            rounds as f64 / secs
        })
        .collect();
    rates.sort_by(f64::total_cmp);
    rates[rates.len() / 2]
}

fn bench_case<N: RadioNode>(
    name: &'static str,
    scheme: &'static str,
    graph: Arc<Graph>,
    make_nodes: impl Fn() -> Vec<N>,
    cfg: &Config,
) -> Measurement {
    let rounds = 2 * graph.node_count() as u64;
    let fast = measure(
        &graph,
        &make_nodes,
        Engine::TransmitterCentric,
        rounds,
        cfg.samples,
    );
    let reference = measure(
        &graph,
        &make_nodes,
        Engine::ListenerCentric,
        rounds,
        cfg.samples,
    );
    let event = measure(
        &graph,
        &make_nodes,
        Engine::EventDriven,
        rounds,
        cfg.samples,
    );
    let m = Measurement {
        workload: name,
        scheme,
        n: graph.node_count(),
        avg_degree: graph.average_degree(),
        rounds_per_sample: rounds,
        fast_rounds_per_sec: fast,
        reference_rounds_per_sec: reference,
        event_rounds_per_sec: event,
    };
    println!(
        "round_throughput/{name}/n={} ({scheme}, avg deg {:.1}): transmitter-centric \
         {:.0} rounds/s, listener-centric {:.0} rounds/s, event-driven {:.0} rounds/s, \
         speedup {:.2}x, event speedup {:.2}x",
        m.n,
        m.avg_degree,
        m.fast_rounds_per_sec,
        m.reference_rounds_per_sec,
        m.event_rounds_per_sec,
        m.speedup(),
        m.event_speedup()
    );
    m
}

/// The standard single-source Algorithm B case under λ labels.
fn run_workload(name: &'static str, graph: Graph, cfg: &Config) -> Measurement {
    let graph = Arc::new(graph);
    let labeling = lambda::construct(&graph, 0)
        .expect("workload is connected")
        .into_labeling();
    bench_case(
        name,
        "lambda",
        Arc::clone(&graph),
        move || BNode::network(&labeling, 0, 7),
        cfg,
    )
}

/// A k-source multi-broadcast case: collection plus bundle broadcast, so
/// the engines also see the one-transmitter collection rounds and the
/// Arc-shared bundle relays.
fn run_multi_workload(name: &'static str, graph: Graph, k: usize, cfg: &Config) -> Measurement {
    let graph = Arc::new(graph);
    let n = graph.node_count();
    let sources: Vec<usize> = (0..k.min(n)).map(|i| i * n / k.min(n)).collect();
    let scheme = multi::construct(&graph, &sources).expect("workload is connected");
    let payloads: Vec<u64> = (0..scheme.k() as u64).map(|j| 7 + j).collect();
    bench_case(
        name,
        "multi_lambda",
        Arc::clone(&graph),
        move || MultiNode::network(&scheme, &payloads),
        cfg,
    )
}

/// The all-to-all gossip case: the token-walk collection dominates the 2n
/// measured rounds, so the engines see n messages in flight — every round
/// has exactly one transmitter whose token grows toward n entries, the
/// worst case for per-message bookkeeping rather than for delivery fan-out.
fn run_gossip_workload(name: &'static str, graph: Graph, cfg: &Config) -> Measurement {
    let graph = Arc::new(graph);
    let n = graph.node_count();
    let scheme = gossip::construct(&graph).expect("workload is connected");
    let payloads: Vec<u64> = (0..n as u64).map(|j| 7 + j).collect();
    bench_case(
        name,
        "gossip",
        Arc::clone(&graph),
        move || GossipNode::network(&scheme, &payloads),
        cfg,
    )
}

fn emit_json(measurements: &[Measurement], cfg: &Config) -> std::io::Result<std::path::PathBuf> {
    let timestamp = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let mut entries = String::new();
    for (i, m) in measurements.iter().enumerate() {
        if i > 0 {
            entries.push_str(",\n");
        }
        entries.push_str(&format!(
            "    {{\"workload\": \"{}\", \"n\": {}, \"avg_degree\": {:.2}, \
             \"scheme\": \"{}\", \"tracing\": false, \"rounds_per_sample\": {}, \
             \"transmitter_centric_rounds_per_sec\": {:.1}, \
             \"listener_centric_rounds_per_sec\": {:.1}, \
             \"event_driven_rounds_per_sec\": {:.1}, \
             \"speedup\": {:.3}, \
             \"event_driven_speedup\": {:.3}}}",
            m.workload,
            m.n,
            m.avg_degree,
            m.scheme,
            m.rounds_per_sample,
            m.fast_rounds_per_sec,
            m.reference_rounds_per_sec,
            m.event_rounds_per_sec,
            m.speedup(),
            m.event_speedup()
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"bench_round_throughput\",\n  \
         \"timestamp_unix\": {timestamp},\n  \"quick\": {},\n  \
         \"workloads\": [\n{entries}\n  ]\n}}\n",
        cfg.quick
    );
    let out = std::env::var("BENCH_OUT").map_or_else(
        |_| {
            // crates/rn-bench -> workspace root
            std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("BENCH_simulator.json")
        },
        Into::into,
    );
    std::fs::write(&out, json)?;
    Ok(out.canonicalize().unwrap_or(out))
}

/// One registry family per bench case; every instance comes through the
/// same `generate` entry point the sweeps use.
const REGISTRY_CASES: [(&str, TopologyFamily); 8] = [
    ("torus", TopologyFamily::Torus),
    ("hypercube", TopologyFamily::Hypercube),
    ("caterpillar", TopologyFamily::Caterpillar { legs: 2 }),
    ("lollipop", TopologyFamily::Lollipop),
    (
        "star-of-cliques",
        TopologyFamily::StarOfCliques { clique_size: 8 },
    ),
    (
        "clustered-gnp",
        TopologyFamily::ClusteredGnp {
            clusters: 6,
            p_in: 0.6,
            p_out: 0.01,
        },
    ),
    ("unit-disk", TopologyFamily::UnitDisk { avg_degree: 8.0 }),
    (
        "degree-capped",
        TopologyFamily::DegreeCapped { max_degree: 4 },
    ),
];

fn main() {
    let cfg = config();
    let n = cfg.n;
    let mut measurements = vec![
        run_workload("path", generators::path(n), &cfg),
        run_workload("random-tree", generators::random_tree(n, 7), &cfg),
        run_workload(
            "gnp-avg-deg-8",
            generators::gnp_connected(n, 8.0 / n as f64, 1).unwrap(),
            &cfg,
        ),
        run_workload(
            "gnp-avg-deg-32",
            generators::gnp_connected(n, 32.0 / n as f64, 1).unwrap(),
            &cfg,
        ),
    ];
    // The dense quadratic-ish generators (clustered gnp, unit disk) are the
    // slow part at n = 10k; the registry cases therefore run at a smaller n
    // so a full bench pass stays in minutes. The engines see every family's
    // *shape*, which is what these cases exist to cover.
    let reg_n = if cfg.test_mode { 200 } else { n / 4 };
    for (name, family) in REGISTRY_CASES {
        let g = family
            .generate(reg_n, 7)
            .expect("registry presets generate at bench sizes");
        measurements.push(run_workload(name, g, &cfg));
    }
    // The k = 4 multi-broadcast case: the same gnp-avg-deg-8 shape, driven
    // through collection + bundle broadcast instead of single-source B.
    measurements.push(run_multi_workload(
        "multi-k4-gnp-avg-deg-8",
        generators::gnp_connected(reg_n, 8.0 / reg_n as f64, 1).unwrap(),
        4,
        &cfg,
    ));
    // The gossip case runs at half the registry size: every node holds a
    // per-message table of n entries, so the network costs Θ(n²) memory —
    // halving n keeps a full bench pass comfortably inside a laptop's RAM
    // while still exercising n messages in flight.
    let gossip_n = (reg_n / 2).max(8);
    measurements.push(run_gossip_workload(
        "gossip-gnp-avg-deg-8",
        generators::gnp_connected(gossip_n, 8.0 / gossip_n as f64, 1).unwrap(),
        &cfg,
    ));
    if cfg.test_mode {
        println!("test mode: skipping BENCH_simulator.json");
        return;
    }
    match emit_json(&measurements, &cfg) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write BENCH_simulator.json: {e}"),
    }
    let best = measurements
        .iter()
        .map(Measurement::speedup)
        .fold(0.0_f64, f64::max);
    let best_event = measurements
        .iter()
        .map(Measurement::event_speedup)
        .fold(0.0_f64, f64::max);
    println!(
        "best speedup over the listener-centric engine: transmitter-centric \
         {best:.2}x, event-driven {best_event:.2}x"
    );
}
