//! E10 — common completion round: benchmarks the B_ack + B composition and
//! regenerates its table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rn_broadcast::common_round::run_common_round;
use rn_experiments::experiments::common_round;
use rn_experiments::{ExperimentConfig, GraphFamily};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_common_round");
    group.sample_size(15);
    for family in [GraphFamily::Path, GraphFamily::Grid] {
        let g = family.generate(64, 1);
        let id = BenchmarkId::new(family.name(), g.node_count());
        group.bench_with_input(id, &g, |b, g| {
            b.iter(|| std::hint::black_box(run_common_round(g, 0, 7).unwrap()));
        });
    }
    group.finish();

    let cfg = ExperimentConfig {
        sizes: vec![16, 64],
        seeds: vec![1],
        threads: rn_radio::batch::default_threads(),
    };
    println!("\n{}", common_round::run(&cfg));
}

criterion_group!(benches, bench);
criterion_main!(benches);
