//! E8 — labeling-scheme construction cost: benchmarks the λ / λ_ack / λ_arb
//! constructions as the network grows and regenerates the cost table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rn_experiments::experiments::scheme_cost;
use rn_experiments::{ExperimentConfig, GraphFamily};
use rn_labeling::{lambda, lambda_ack, lambda_arb};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_scheme_construction");
    group.sample_size(15);
    for n in [64usize, 256, 1024] {
        let g = GraphFamily::GnpSparse.generate(n, 1);
        group.bench_with_input(BenchmarkId::new("lambda", n), &g, |b, g| {
            b.iter(|| std::hint::black_box(lambda::construct(g, 0).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("lambda_ack", n), &g, |b, g| {
            b.iter(|| std::hint::black_box(lambda_ack::construct(g, 0).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("lambda_arb", n), &g, |b, g| {
            b.iter(|| std::hint::black_box(lambda_arb::construct(g).unwrap()));
        });
    }
    group.finish();

    let cfg = ExperimentConfig {
        sizes: vec![64, 256],
        seeds: vec![1],
        threads: rn_radio::batch::default_threads(),
    };
    println!("\n{}", scheme_cost::run(&cfg));
}

criterion_group!(benches, bench);
criterion_main!(benches);
