//! Substrate micro-benchmarks: the raw cost of one simulated round and of the
//! graph substrate operations the labeling schemes lean on. These do not map
//! to a paper table; they exist to keep the simulator fast enough for the
//! large sweeps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rn_broadcast::algo_b::BNode;
use rn_graph::algorithms::{minimal_dominating_subset, square_graph, ReductionOrder};
use rn_graph::generators;
use rn_labeling::lambda;
use rn_radio::Simulator;

fn bench_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_rounds");
    group.sample_size(20);
    for n in [256usize, 1024] {
        let g = generators::gnp_connected(n, 8.0 / n as f64, 1).unwrap();
        let scheme = lambda::construct(&g, 0).unwrap();
        group.bench_with_input(BenchmarkId::new("full_broadcast", n), &g, |b, g| {
            b.iter(|| {
                let nodes = BNode::network(scheme.labeling(), 0, 7);
                let mut sim = Simulator::new(g.clone(), nodes).without_trace();
                sim.run_rounds(2 * n as u64);
                std::hint::black_box(sim.current_round())
            });
        });
    }
    group.finish();
}

fn bench_graph_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_substrate");
    group.sample_size(20);
    for n in [256usize, 1024] {
        let g = generators::gnp_connected(n, 8.0 / n as f64, 1).unwrap();
        group.bench_with_input(BenchmarkId::new("square_graph", n), &g, |b, g| {
            b.iter(|| std::hint::black_box(square_graph(g)));
        });
        let candidates: Vec<usize> = g.nodes().collect();
        let targets: Vec<usize> = g.nodes().collect();
        group.bench_with_input(
            BenchmarkId::new("minimal_dominating_subset", n),
            &g,
            |b, g| {
                b.iter(|| {
                    std::hint::black_box(
                        minimal_dominating_subset(
                            g,
                            &candidates,
                            &targets,
                            ReductionOrder::Forward,
                        )
                        .unwrap(),
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_rounds, bench_graph_algorithms);
criterion_main!(benches);
