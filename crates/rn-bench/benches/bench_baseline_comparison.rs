//! E9 — baseline comparison: benchmarks λ against the unique-identifier and
//! square-colouring baselines through one shared graph and regenerates the
//! comparison table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rn_broadcast::session::{Scheme, Session};
use rn_experiments::experiments::baseline_comparison;
use rn_experiments::{ExperimentConfig, GraphFamily};
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_baseline_comparison");
    group.sample_size(10);
    let g = Arc::new(GraphFamily::Grid.generate(100, 1));
    for (name, scheme) in [
        ("lambda", Scheme::Lambda),
        ("unique_ids", Scheme::UniqueIds),
        ("square_coloring", Scheme::SquareColoring),
    ] {
        group.bench_with_input(BenchmarkId::new(name, g.node_count()), &g, |b, g| {
            b.iter(|| {
                std::hint::black_box(
                    Session::builder(scheme, Arc::clone(g))
                        .message(7)
                        .build()
                        .unwrap()
                        .run(),
                )
            });
        });
    }
    group.finish();

    let cfg = ExperimentConfig {
        sizes: vec![16, 64],
        seeds: vec![1],
        threads: rn_radio::batch::default_threads(),
    };
    println!("\n{}", baseline_comparison::run(&cfg));
}

criterion_group!(benches, bench);
criterion_main!(benches);
