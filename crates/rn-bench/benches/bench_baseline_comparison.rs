//! E9 — baseline comparison: benchmarks λ against the unique-identifier and
//! square-colouring baselines and regenerates the comparison table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rn_broadcast::runner::{run_broadcast, run_coloring_broadcast, run_unique_id_broadcast};
use rn_experiments::experiments::baseline_comparison;
use rn_experiments::{ExperimentConfig, GraphFamily};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_baseline_comparison");
    group.sample_size(10);
    let g = GraphFamily::Grid.generate(100, 1);
    group.bench_with_input(BenchmarkId::new("lambda", g.node_count()), &g, |b, g| {
        b.iter(|| std::hint::black_box(run_broadcast(g, 0, 7).unwrap()))
    });
    group.bench_with_input(BenchmarkId::new("unique_ids", g.node_count()), &g, |b, g| {
        b.iter(|| std::hint::black_box(run_unique_id_broadcast(g, 0, 7).unwrap()))
    });
    group.bench_with_input(
        BenchmarkId::new("square_coloring", g.node_count()),
        &g,
        |b, g| b.iter(|| std::hint::black_box(run_coloring_broadcast(g, 0, 7).unwrap())),
    );
    group.finish();

    let cfg = ExperimentConfig {
        sizes: vec![16, 64],
        seeds: vec![1],
        threads: rn_radio::batch::default_threads(),
    };
    println!("\n{}", baseline_comparison::run(&cfg));
}

criterion_group!(benches, bench);
criterion_main!(benches);
