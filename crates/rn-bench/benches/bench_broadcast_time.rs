//! E2 — Theorem 2.9: benchmarks algorithm B (labeling + simulation) across
//! sizes and families, and regenerates the completion-round table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rn_broadcast::runner::run_broadcast;
use rn_experiments::experiments::broadcast_time;
use rn_experiments::{ExperimentConfig, GraphFamily};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_broadcast_time");
    group.sample_size(15);
    for family in [GraphFamily::Path, GraphFamily::Grid, GraphFamily::GnpSparse] {
        for n in [64usize, 256] {
            let g = family.generate(n, 1);
            let id = BenchmarkId::new(family.name(), g.node_count());
            group.bench_with_input(id, &g, |b, g| {
                b.iter(|| std::hint::black_box(run_broadcast(g, 0, 7).unwrap()))
            });
        }
    }
    group.finish();

    let cfg = ExperimentConfig {
        sizes: vec![16, 64, 256],
        seeds: vec![1],
        threads: rn_radio::batch::default_threads(),
    };
    println!("\n{}", broadcast_time::run(&cfg));
}

criterion_group!(benches, bench);
criterion_main!(benches);
