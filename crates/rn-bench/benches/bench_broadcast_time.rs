//! E2 — Theorem 2.9: benchmarks algorithm B across sizes and families, both
//! as the full pipeline (labeling + simulation) and as an amortized session
//! run (the labeling constructed once, only the simulation repeating), and
//! regenerates the completion-round table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rn_broadcast::session::{Scheme, Session};
use rn_experiments::experiments::broadcast_time;
use rn_experiments::{ExperimentConfig, GraphFamily};
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_broadcast_time");
    group.sample_size(15);
    for family in [GraphFamily::Path, GraphFamily::Grid, GraphFamily::GnpSparse] {
        for n in [64usize, 256] {
            let g = Arc::new(family.generate(n, 1));
            let full_id = BenchmarkId::new(format!("{}_full", family.name()), g.node_count());
            group.bench_with_input(full_id, &g, |b, g| {
                b.iter(|| {
                    std::hint::black_box(
                        Session::builder(Scheme::Lambda, Arc::clone(g))
                            .message(7)
                            .build()
                            .unwrap()
                            .run(),
                    )
                });
            });
            let session = Session::builder(Scheme::Lambda, Arc::clone(&g))
                .message(7)
                .build()
                .unwrap();
            let amortized_id =
                BenchmarkId::new(format!("{}_amortized", family.name()), g.node_count());
            group.bench_with_input(amortized_id, &session, |b, s| {
                b.iter(|| std::hint::black_box(s.run()));
            });
        }
    }
    group.finish();

    let cfg = ExperimentConfig {
        sizes: vec![16, 64, 256],
        seeds: vec![1],
        threads: rn_radio::batch::default_threads(),
    };
    println!("\n{}", broadcast_time::run(&cfg));
}

criterion_group!(benches, bench);
criterion_main!(benches);
