//! E6 — one-bit schemes on cycles and grids: benchmarks the delay-relay
//! pipeline through the session API and regenerates the per-class tables.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rn_broadcast::session::{Scheme, Session};
use rn_experiments::experiments::onebit;
use rn_experiments::ExperimentConfig;
use rn_graph::generators;
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_onebit");
    group.sample_size(20);
    for n in [64usize, 256] {
        let g = Arc::new(generators::cycle(n));
        group.bench_with_input(BenchmarkId::new("cycle", n), &g, |b, g| {
            b.iter(|| {
                std::hint::black_box(
                    Session::builder(Scheme::OneBitCycle, Arc::clone(g))
                        .message(7)
                        .build()
                        .unwrap()
                        .run(),
                )
            });
        });
    }
    for (rows, cols) in [(8usize, 8usize), (16, 16)] {
        let g = Arc::new(generators::grid(rows, cols));
        group.bench_with_input(BenchmarkId::new("grid", rows * cols), &g, |b, g| {
            b.iter(|| {
                std::hint::black_box(
                    Session::builder(Scheme::OneBitGrid { rows, cols }, Arc::clone(g))
                        .message(7)
                        .build()
                        .unwrap()
                        .run(),
                )
            });
        });
    }
    group.finish();

    let cfg = ExperimentConfig {
        sizes: vec![16, 36, 64],
        seeds: vec![1],
        threads: rn_radio::batch::default_threads(),
    };
    for t in onebit::run(&cfg) {
        println!("\n{t}");
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
