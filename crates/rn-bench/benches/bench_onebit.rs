//! E6 — one-bit schemes on cycles and grids: benchmarks the delay-relay
//! pipeline and regenerates the per-class tables.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rn_broadcast::runner::{run_onebit_cycle, run_onebit_grid};
use rn_experiments::experiments::onebit;
use rn_experiments::ExperimentConfig;
use rn_graph::generators;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_onebit");
    group.sample_size(20);
    for n in [64usize, 256] {
        let g = generators::cycle(n);
        group.bench_with_input(BenchmarkId::new("cycle", n), &g, |b, g| {
            b.iter(|| std::hint::black_box(run_onebit_cycle(g, 0, 7).unwrap()))
        });
    }
    for (rows, cols) in [(8usize, 8usize), (16, 16)] {
        let g = generators::grid(rows, cols);
        group.bench_with_input(
            BenchmarkId::new("grid", rows * cols),
            &g,
            |b, g| b.iter(|| std::hint::black_box(run_onebit_grid(g, rows, cols, 0, 7).unwrap())),
        );
    }
    group.finish();

    let cfg = ExperimentConfig {
        sizes: vec![16, 36, 64],
        seeds: vec![1],
        threads: rn_radio::batch::default_threads(),
    };
    for t in onebit::run(&cfg) {
        println!("\n{t}");
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
