//! Metrics-overhead benchmark: the price of the telemetry hook in the
//! simulator's round loop, in rounds/second, on all three engines.
//!
//! The zero-cost claim rn-telemetry makes is structural: with no sink
//! installed the engines never assemble a `RoundMetrics` value — the hook
//! is one `Option` test per round — so an uninstrumented run should measure
//! indistinguishably from the pre-telemetry simulator. This bench pins the
//! claim with numbers, and also prices the two real sink modes:
//!
//! * `none`    — no sink installed (the default, and the baseline);
//! * `noop`    — a [`NoopSink`] installed: the engines assemble the
//!   per-round `RoundMetrics` and the sink discards it, isolating the cost
//!   of metric *assembly* from the cost of *aggregation*;
//! * `counter` — a [`CounterSink`] installed: assembly plus the full
//!   aggregation arithmetic, the mode `Session::run_instrumented` and
//!   `sweep --metrics` actually pay for.
//!
//! Workloads mirror the round-throughput ladder's extremes: a degree-2 path
//! (per-node protocol driving dominates, metric assembly is relatively most
//! visible) and a G(n, p) of average degree 32 (delivery scanning dominates,
//! assembly amortises away). Runs are 2n rounds with tracing off, as in
//! `bench_round_throughput`.
//!
//! Modes: default n = 10 000 with 3 samples; `--quick` (or `BENCH_QUICK=1`)
//! n = 2 000 with 1 sample; `--test` one tiny iteration (cargo bench-test).
//! Output is the printed table only — overhead ratios are too noisy across
//! machines to gate on a committed file; the committed gate for engine
//! throughput lives in `BENCH_simulator_quick.json` + `telemetry-report
//! --bench-guard`.

use rn_broadcast::algo_b::BNode;
use rn_graph::{generators, Graph};
use rn_labeling::lambda;
use rn_radio::{CounterSink, Engine, NoopSink, RadioNode, Simulator};
use std::sync::Arc;
use std::time::Instant;

#[derive(Clone, Copy, PartialEq, Eq)]
enum SinkMode {
    None,
    Noop,
    Counter,
}

impl SinkMode {
    const ALL: [SinkMode; 3] = [SinkMode::None, SinkMode::Noop, SinkMode::Counter];
}

struct Config {
    n: usize,
    samples: usize,
}

fn config() -> Config {
    let args: Vec<String> = std::env::args().collect();
    let test_mode = args.iter().any(|a| a == "--test");
    let quick = test_mode
        || args.iter().any(|a| a == "--quick")
        || std::env::var("BENCH_QUICK").is_ok_and(|v| v == "1");
    Config {
        n: if test_mode {
            200
        } else if quick {
            2_000
        } else {
            10_000
        },
        samples: if quick { 1 } else { 3 },
    }
}

/// Median rounds/second over `samples` runs of `rounds` rounds with the
/// given engine and sink mode, tracing off.
fn measure<N: RadioNode>(
    graph: &Arc<Graph>,
    make_nodes: impl Fn() -> Vec<N>,
    engine: Engine,
    mode: SinkMode,
    rounds: u64,
    samples: usize,
) -> f64 {
    let mut rates: Vec<f64> = (0..samples)
        .map(|_| {
            let mut sim = Simulator::new(Arc::clone(graph), make_nodes())
                .without_trace()
                .with_engine(engine);
            sim = match mode {
                SinkMode::None => sim,
                SinkMode::Noop => sim.with_metrics(Box::new(NoopSink)),
                SinkMode::Counter => sim.with_metrics(Box::new(CounterSink::default())),
            };
            let start = Instant::now();
            sim.run_rounds(rounds);
            let secs = start.elapsed().as_secs_f64();
            std::hint::black_box(sim.current_round());
            std::hint::black_box(sim.metrics_counters());
            rounds as f64 / secs
        })
        .collect();
    rates.sort_by(f64::total_cmp);
    rates[rates.len() / 2]
}

fn bench_workload(name: &str, graph: Graph, cfg: &Config) {
    let graph = Arc::new(graph);
    let rounds = 2 * graph.node_count() as u64;
    let labeling = lambda::construct(&graph, 0)
        .expect("workload is connected")
        .into_labeling();
    let make_nodes = move || BNode::network(&labeling, 0, 7);
    for engine in [
        Engine::TransmitterCentric,
        Engine::ListenerCentric,
        Engine::EventDriven,
    ] {
        let rates: Vec<f64> = SinkMode::ALL
            .iter()
            .map(|&mode| measure(&graph, &make_nodes, engine, mode, rounds, cfg.samples))
            .collect();
        let overhead = |i: usize| (rates[0] / rates[i] - 1.0) * 100.0;
        println!(
            "metrics_overhead/{name}/n={} [{engine:?}]: none {:.0} rounds/s, \
             noop {:.0} rounds/s ({:+.1}%), counter {:.0} rounds/s ({:+.1}%)",
            graph.node_count(),
            rates[0],
            rates[1],
            overhead(1),
            rates[2],
            overhead(2),
        );
    }
}

fn main() {
    let cfg = config();
    let n = cfg.n;
    bench_workload("path", generators::path(n), &cfg);
    bench_workload(
        "gnp-avg-deg-32",
        generators::gnp_connected(n, 32.0 / n as f64, 1).unwrap(),
        &cfg,
    );
    println!(
        "overhead = slowdown vs the no-sink baseline; 'noop' prices RoundMetrics \
         assembly, 'counter' adds aggregation (the run_instrumented mode)"
    );
}
