//! Scheduled fault and adversary injection: [`FaultPlan`].
//!
//! The paper's guarantees (Theorem 2.9's `2n − 3` rounds, the multi/gossip
//! bounds) are proved for a fault-free synchronous radio network. A
//! [`FaultPlan`] lets the harness measure how each labeling scheme degrades
//! when that assumption is broken, without touching the protocols themselves:
//! the plan is a deterministic schedule of [`FaultEvent`]s that the
//! *simulator* applies — identically in every engine — while the nodes keep
//! running the unmodified protocol and never learn a fault happened.
//!
//! # Event taxonomy
//!
//! | Event | Applied in | Effect |
//! |---|---|---|
//! | [`FaultEvent::Crash`] | decide + observe | from its round on, the node is permanently silent *and* deaf: `step`/`receive` are never called again |
//! | [`FaultEvent::LateWake`] | decide + observe | the node is inert (as if crashed) in every round **before** its wake round |
//! | [`FaultEvent::Jam`] | decide + mark | for the scheduled rounds the node's protocol is suspended and it transmits noise: every listener with the jammer in its neighbourhood experiences a collision (undecodable channel), exactly as if an extra anonymous transmitter were present |
//! | [`FaultEvent::Drop`] | observe | receive-side loss: if the node would have heard a message this round, it observes silence instead |
//! | [`FaultEvent::Corrupt`] | observe | receive-side garbling: the message is replaced by [`RadioMessage::corrupted`]'s output — a garbled decode if the message type defines one, otherwise silence |
//!
//! Rounds are 1-based, matching [`crate::trace::RoundRecord::round`]. The
//! fault schedule lives entirely in the harness: nodes still never see the
//! global round number, so injecting faults cannot leak it to a protocol.
//!
//! # Determinism
//!
//! A plan is plain data — the same plan on the same graph and protocol
//! produces byte-identical traces, observations and statistics on every run,
//! on both [`crate::Engine`]s, and regardless of batch-level parallelism.
//! An empty plan ([`FaultPlan::none`]) compiles to nothing at all: the
//! simulator takes its ordinary fault-free paths and produces output
//! byte-identical to a simulator that was never given a plan.
//!
//! [`RadioMessage::corrupted`]: crate::message::RadioMessage::corrupted

use rn_graph::NodeId;

/// One scheduled fault. See the [module docs](self) for the taxonomy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultEvent {
    /// The node halts permanently at the start of `round`: from that round
    /// on it never transmits and never observes anything.
    Crash {
        /// The crashing node.
        node: NodeId,
        /// First round (1-based) in which the node is dead.
        round: u64,
    },
    /// The node becomes an adversarial jammer for an interval of rounds:
    /// its protocol is suspended and it transmits undecodable noise, forcing
    /// a collision at every listener that has it as a neighbour.
    Jam {
        /// The jamming node.
        node: NodeId,
        /// First round (1-based) of the jamming interval.
        from_round: u64,
        /// Number of consecutive rounds jammed (0 = no effect).
        rounds: u64,
    },
    /// Receive-side message loss: if `node` would have successfully received
    /// a message in `round`, it observes silence instead. A no-op in rounds
    /// where the node would have heard nothing anyway.
    Drop {
        /// The affected listener.
        node: NodeId,
        /// The round (1-based) whose reception is lost.
        round: u64,
    },
    /// Receive-side garbling: a message successfully received by `node` in
    /// `round` is replaced by its [`corrupted`] form; message types without a
    /// decodable corruption deliver silence instead.
    ///
    /// [`corrupted`]: crate::message::RadioMessage::corrupted
    Corrupt {
        /// The affected listener.
        node: NodeId,
        /// The round (1-based) whose reception is garbled.
        round: u64,
    },
    /// The node is inert — exactly as if crashed — in every round strictly
    /// before `round`, then starts executing its protocol from scratch.
    LateWake {
        /// The late-waking node.
        node: NodeId,
        /// First round (1-based) in which the node participates
        /// (`round <= 1` means no effect).
        round: u64,
    },
}

impl FaultEvent {
    /// The node this event targets.
    pub fn node(&self) -> NodeId {
        match *self {
            FaultEvent::Crash { node, .. }
            | FaultEvent::Jam { node, .. }
            | FaultEvent::Drop { node, .. }
            | FaultEvent::Corrupt { node, .. }
            | FaultEvent::LateWake { node, .. } => node,
        }
    }

    /// First round (1-based) at which this event has an observable effect,
    /// or `None` for events that can never have one (`Jam` with zero rounds,
    /// `LateWake` with a wake round ≤ 1).
    pub fn effective_round(&self) -> Option<u64> {
        match *self {
            FaultEvent::Crash { round, .. }
            | FaultEvent::Drop { round, .. }
            | FaultEvent::Corrupt { round, .. } => Some(round.max(1)),
            FaultEvent::Jam {
                from_round, rounds, ..
            } => (rounds > 0).then(|| from_round.max(1)),
            FaultEvent::LateWake { round, .. } => (round > 1).then_some(1),
        }
    }
}

/// How a trace records a node whose round was consumed by a fault.
///
/// Carried by [`NodeEvent::Faulted`](crate::trace::NodeEvent::Faulted); an
/// execution without faults never produces one, so fault-free traces are
/// unchanged by the existence of this type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The node is dead (at or past its crash round).
    Crashed,
    /// The node has not woken yet (before its late-wake round).
    Asleep,
    /// The node spent the round jamming instead of running its protocol.
    Jamming,
    /// A message the node would have received was dropped.
    Dropped,
    /// A message the node would have received was garbled beyond decoding.
    Corrupted,
}

/// A deterministic schedule of fault events, installed on a simulator with
/// [`Simulator::with_faults`](crate::Simulator::with_faults) or threaded
/// through a `Session` via `SessionBuilder::faults`.
///
/// ```
/// use rn_radio::fault::FaultPlan;
///
/// let plan = FaultPlan::none()
///     .crash(3, 5)        // node 3 dies at the start of round 5
///     .jam(0, 2, 4)       // node 0 jams rounds 2..=5
///     .late_wake(7, 10);  // node 7 is inert until round 10
/// assert_eq!(plan.events().len(), 3);
/// assert!(!plan.is_empty());
/// assert!(FaultPlan::none().is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan: no faults. Guaranteed to produce byte-identical
    /// traces and reports to a run that was never given a plan.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan made from an explicit event list.
    pub fn from_events(events: Vec<FaultEvent>) -> Self {
        FaultPlan { events }
    }

    /// Adds a [`FaultEvent::Crash`] (builder style).
    #[must_use]
    pub fn crash(mut self, node: NodeId, round: u64) -> Self {
        self.events.push(FaultEvent::Crash { node, round });
        self
    }

    /// Adds a [`FaultEvent::Jam`] covering `rounds` consecutive rounds
    /// starting at `from_round` (builder style).
    #[must_use]
    pub fn jam(mut self, node: NodeId, from_round: u64, rounds: u64) -> Self {
        self.events.push(FaultEvent::Jam {
            node,
            from_round,
            rounds,
        });
        self
    }

    /// Adds a [`FaultEvent::Drop`] (builder style).
    #[must_use]
    pub fn drop_message(mut self, node: NodeId, round: u64) -> Self {
        self.events.push(FaultEvent::Drop { node, round });
        self
    }

    /// Adds a [`FaultEvent::Corrupt`] (builder style).
    #[must_use]
    pub fn corrupt(mut self, node: NodeId, round: u64) -> Self {
        self.events.push(FaultEvent::Corrupt { node, round });
        self
    }

    /// Adds a [`FaultEvent::LateWake`] (builder style).
    #[must_use]
    pub fn late_wake(mut self, node: NodeId, round: u64) -> Self {
        self.events.push(FaultEvent::LateWake { node, round });
        self
    }

    /// Appends an event in place.
    pub fn push(&mut self, event: FaultEvent) {
        self.events.push(event);
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules no events at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The largest node id any event targets, or `None` for an empty plan.
    /// A plan is valid for a graph iff this is `< node_count`.
    pub fn max_node(&self) -> Option<NodeId> {
        self.events.iter().map(FaultEvent::node).max()
    }

    /// The round at which `node` crashes (smallest scheduled crash round),
    /// or `None` if the plan never crashes it.
    pub fn crash_round(&self, node: NodeId) -> Option<u64> {
        self.events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::Crash { node: v, round } if v == node => Some(round.max(1)),
                _ => None,
            })
            .min()
    }

    /// Number of events whose effect had begun by the end of round `round`
    /// (inclusive) — the `faults_injected` accounting the run reports use.
    /// Events that can never have an effect are not counted.
    pub fn injected_by(&self, round: u64) -> usize {
        self.events
            .iter()
            .filter_map(FaultEvent::effective_round)
            .filter(|&r| r <= round)
            .count()
    }
}

/// Receive-side fault kinds, as compiled for per-round lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum RxFault {
    Drop,
    Corrupt,
}

/// A [`FaultPlan`] compiled against a concrete node count for O(1)-ish
/// per-round queries inside `step_round`. Built by
/// [`Simulator::with_faults`](crate::Simulator::with_faults); an empty plan
/// never reaches this type (the simulator keeps `None` and takes its
/// ordinary fault-free paths).
#[derive(Debug, Clone)]
pub(crate) struct CompiledFaults {
    /// Per node: first dead round (`u64::MAX` = never crashes).
    crash_round: Vec<u64>,
    /// Per node: first awake round (1 = awake from the start).
    wake_round: Vec<u64>,
    /// Jam intervals as `(node, first_round, last_round)`, inclusive.
    jams: Vec<(NodeId, u64, u64)>,
    /// Receive-side faults sorted by `(round, node)`; at most one per
    /// `(round, node)` pair (the first scheduled event wins).
    rx: Vec<(u64, NodeId, RxFault)>,
}

impl CompiledFaults {
    /// Compiles `plan` for a graph of `n` nodes.
    ///
    /// # Panics
    /// Panics if any event targets a node `>= n` (mirrors
    /// [`Simulator::new`](crate::Simulator::new)'s node-count check).
    pub(crate) fn compile(plan: &FaultPlan, n: usize) -> Self {
        if let Some(max) = plan.max_node() {
            assert!(
                max < n,
                "fault plan targets node {max}, but the graph has only {n} nodes"
            );
        }
        let mut crash_round = vec![u64::MAX; n];
        let mut wake_round = vec![1u64; n];
        let mut jams = Vec::new();
        let mut rx = Vec::new();
        for event in plan.events() {
            match *event {
                FaultEvent::Crash { node, round } => {
                    crash_round[node] = crash_round[node].min(round.max(1));
                }
                FaultEvent::LateWake { node, round } => {
                    wake_round[node] = wake_round[node].max(round);
                }
                FaultEvent::Jam {
                    node,
                    from_round,
                    rounds,
                } => {
                    if rounds > 0 {
                        let first = from_round.max(1);
                        jams.push((node, first, first + (rounds - 1)));
                    }
                }
                FaultEvent::Drop { node, round } => {
                    rx.push((round.max(1), node, RxFault::Drop));
                }
                FaultEvent::Corrupt { node, round } => {
                    rx.push((round.max(1), node, RxFault::Corrupt));
                }
            }
        }
        // Stable sort keeps insertion order within a (round, node) pair, so
        // deduping below keeps the first scheduled event, as documented.
        rx.sort_by_key(|&(round, node, _)| (round, node));
        rx.dedup_by_key(|&mut (round, node, _)| (round, node));
        CompiledFaults {
            crash_round,
            wake_round,
            jams,
            rx,
        }
    }

    /// If node `v` is inert in `round`, which marker the trace records.
    /// A crash outranks a pending wake when both apply.
    #[inline]
    pub(crate) fn inert_kind(&self, v: NodeId, round: u64) -> Option<FaultKind> {
        if round >= self.crash_round[v] {
            Some(FaultKind::Crashed)
        } else if round < self.wake_round[v] {
            Some(FaultKind::Asleep)
        } else {
            None
        }
    }

    /// The first round in which node `v` participates (its late-wake round;
    /// 1 when it was never delayed). The event-driven engine seeds its wake
    /// queue from this so a sleeping node costs nothing until it wakes.
    #[inline]
    pub(crate) fn wake_round(&self, v: NodeId) -> u64 {
        self.wake_round[v]
    }

    /// The compiled jam intervals as `(node, first_round, last_round)`,
    /// inclusive. The event-driven engine seeds forced wake-ups from the
    /// interval starts: a jammer occupies the channel (and resets quiet
    /// detection) even while its protocol is otherwise dormant.
    #[inline]
    pub(crate) fn jam_intervals(&self) -> &[(NodeId, u64, u64)] {
        &self.jams
    }

    /// Whether node `v` spends `round` jamming. Inertness outranks jamming;
    /// callers check [`inert_kind`](Self::inert_kind) first.
    #[inline]
    pub(crate) fn is_jamming(&self, v: NodeId, round: u64) -> bool {
        self.jams
            .iter()
            .any(|&(node, first, last)| node == v && (first..=last).contains(&round))
    }

    /// The receive-side faults scheduled for `round`, sorted by node.
    pub(crate) fn rx_window(&self, round: u64) -> &[(u64, NodeId, RxFault)] {
        let start = self.rx.partition_point(|&(r, _, _)| r < round);
        let end = self.rx.partition_point(|&(r, _, _)| r <= round);
        &self.rx[start..end]
    }

    /// Looks up node `v`'s receive-side fault in a window returned by
    /// [`rx_window`](Self::rx_window).
    #[inline]
    pub(crate) fn rx_fault(window: &[(u64, NodeId, RxFault)], v: NodeId) -> Option<RxFault> {
        window
            .binary_search_by_key(&v, |&(_, node, _)| node)
            .ok()
            .map(|i| window[i].2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_empty_and_builders_accumulate() {
        assert!(FaultPlan::none().is_empty());
        assert_eq!(FaultPlan::none().len(), 0);
        let plan = FaultPlan::none()
            .crash(3, 5)
            .jam(0, 2, 4)
            .drop_message(1, 7)
            .corrupt(2, 7)
            .late_wake(4, 9);
        assert_eq!(plan.len(), 5);
        assert_eq!(plan.max_node(), Some(4));
        assert_eq!(plan.crash_round(3), Some(5));
        assert_eq!(plan.crash_round(0), None);
    }

    #[test]
    fn effective_rounds_and_injected_accounting() {
        let plan = FaultPlan::none()
            .crash(0, 5)
            .jam(1, 2, 3)
            .jam(1, 10, 0) // zero-length: never effective
            .late_wake(2, 1) // wake round 1: never effective
            .late_wake(3, 6) // effective from round 1
            .drop_message(4, 8);
        assert_eq!(plan.injected_by(0), 0);
        assert_eq!(plan.injected_by(1), 1); // the late-wake
        assert_eq!(plan.injected_by(2), 2); // + jam
        assert_eq!(plan.injected_by(5), 3); // + crash
        assert_eq!(plan.injected_by(100), 4); // + drop; duds never count
    }

    #[test]
    fn compile_resolves_overlaps_and_ranges() {
        let plan = FaultPlan::none()
            .crash(0, 9)
            .crash(0, 4) // earliest crash wins
            .late_wake(1, 3)
            .jam(2, 5, 2)
            .drop_message(3, 6)
            .corrupt(3, 6); // same (round, node): first scheduled wins
        let c = CompiledFaults::compile(&plan, 5);
        assert_eq!(c.inert_kind(0, 3), None);
        assert_eq!(c.inert_kind(0, 4), Some(FaultKind::Crashed));
        assert_eq!(c.inert_kind(0, 400), Some(FaultKind::Crashed));
        assert_eq!(c.inert_kind(1, 2), Some(FaultKind::Asleep));
        assert_eq!(c.inert_kind(1, 3), None);
        assert!(!c.is_jamming(2, 4));
        assert!(c.is_jamming(2, 5));
        assert!(c.is_jamming(2, 6));
        assert!(!c.is_jamming(2, 7));
        let w = c.rx_window(6);
        assert_eq!(CompiledFaults::rx_fault(w, 3), Some(RxFault::Drop));
        assert_eq!(CompiledFaults::rx_fault(w, 0), None);
        assert!(c.rx_window(7).is_empty());
    }

    #[test]
    fn round_zero_schedules_clamp_to_round_one() {
        let plan = FaultPlan::none()
            .crash(0, 0)
            .jam(1, 0, 2)
            .drop_message(2, 0);
        let c = CompiledFaults::compile(&plan, 3);
        assert_eq!(c.inert_kind(0, 1), Some(FaultKind::Crashed));
        assert!(c.is_jamming(1, 1));
        assert!(c.is_jamming(1, 2));
        assert!(!c.is_jamming(1, 3));
        assert_eq!(
            CompiledFaults::rx_fault(c.rx_window(1), 2),
            Some(RxFault::Drop)
        );
    }

    #[test]
    #[should_panic(expected = "targets node 7")]
    fn compile_rejects_out_of_range_nodes() {
        let plan = FaultPlan::none().crash(7, 1);
        let _ = CompiledFaults::compile(&plan, 5);
    }
}
