//! Exhaustive wake-hint contract auditing: the machinery behind the
//! bounded model checker's elision-soundness proof.
//!
//! [`RadioNode::wake_hint`] returning `h > 0` promises that — absent a
//! decodable delivery — the node's next `h` `step`/`receive(None)` pairs
//! are Listen-only no-ops that leave its state bit-identical (*frozen*).
//! The event-driven engine elides those calls, so a hint that overpromises
//! silently corrupts elided runs. [`audit_wake_hints`] drives a simulation
//! round by round and, at **every reachable state**, replays the promised
//! span against a cloned node: each replayed `step` must return
//! [`Action::Listen`](crate::Action) and (for nodes implementing
//! [`RadioNode::state_digest`]) the digest must not move. On an enumerated
//! graph family this is an exhaustive proof of the elision contract up to
//! the bound.

use crate::node::RadioNode;
use crate::simulator::Simulator;
use rn_graph::NodeId;

/// How a wake-hint promise was broken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HintViolationKind {
    /// A replayed `step` inside the promised span returned
    /// `Action::Transmit` — the engine would have suppressed a real
    /// transmission.
    TransmittedDuringSpan,
    /// The node's state digest moved across a replayed
    /// `step`/`receive(None)` pair — the state was not frozen, so an
    /// elided run diverges from a driven one.
    StateDrift {
        /// Digest when the hint was issued.
        before: u64,
        /// Digest after the offending replayed pair.
        after: u64,
    },
}

impl std::fmt::Display for HintViolationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HintViolationKind::TransmittedDuringSpan => {
                write!(f, "step() transmitted inside the promised Listen-only span")
            }
            HintViolationKind::StateDrift { before, after } => write!(
                f,
                "state digest drifted across an elided pair ({before:#018x} -> {after:#018x})"
            ),
        }
    }
}

/// A located wake-hint contract violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WakeHintViolation {
    /// The node whose hint overpromised.
    pub node: NodeId,
    /// The (1-based) round at whose post-state the hint was queried;
    /// `0` is the initial state.
    pub round: u64,
    /// The hint value the node returned.
    pub hint: u64,
    /// 1-based offset of the replayed pair at which the promise broke.
    pub offset: u64,
    /// What broke.
    pub kind: HintViolationKind,
}

impl std::fmt::Display for WakeHintViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "node {} after round {}: wake_hint() = {} but at elided step {}: {}",
            self.node, self.round, self.hint, self.offset, self.kind
        )
    }
}

/// What a clean audit covered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WakeHintAudit {
    /// Reachable states examined (one per node per executed round,
    /// including the initial state).
    pub states_checked: u64,
    /// States at which a positive hint was issued and replayed.
    pub hints_audited: u64,
    /// Total `step`/`receive(None)` pairs replayed.
    pub steps_replayed: u64,
}

impl WakeHintAudit {
    fn absorb(&mut self, other: WakeHintAudit) {
        self.states_checked += other.states_checked;
        self.hints_audited += other.hints_audited;
        self.steps_replayed += other.steps_replayed;
    }
}

/// Verifies every positive hint issued at the simulator's current state by
/// clone-and-replay. `horizon` bounds the replay length (a `u64::MAX`
/// "park until reception" hint is checked for `horizon` pairs — enough to
/// cover any run of at most that many further rounds).
fn check_current_state<N: RadioNode + Clone>(
    sim: &Simulator<N>,
    round: u64,
    horizon: u64,
) -> Result<WakeHintAudit, WakeHintViolation> {
    let mut audit = WakeHintAudit::default();
    for (v, node) in sim.nodes().iter().enumerate() {
        audit.states_checked += 1;
        let hint = node.wake_hint();
        if hint == 0 {
            continue;
        }
        let span = hint.min(horizon);
        if span == 0 {
            continue;
        }
        audit.hints_audited += 1;
        let mut replay = node.clone();
        // A digest of 0 is the trait's opt-out default: Listen-only is
        // still enforced, state drift is only visible to implementers.
        let before = replay.state_digest();
        for offset in 1..=span {
            if replay.step().is_transmit() {
                return Err(WakeHintViolation {
                    node: v,
                    round,
                    hint,
                    offset,
                    kind: HintViolationKind::TransmittedDuringSpan,
                });
            }
            replay.receive(None);
            audit.steps_replayed += 1;
            if before != 0 {
                let after = replay.state_digest();
                if after != before {
                    return Err(WakeHintViolation {
                        node: v,
                        round,
                        hint,
                        offset,
                        kind: HintViolationKind::StateDrift { before, after },
                    });
                }
            }
        }
    }
    Ok(audit)
}

/// Drives `sim` for `rounds` rounds and audits the wake-hint contract at
/// every reachable state (the initial state and the post-state of each
/// round), replaying each positive hint against a cloned node.
///
/// Runs under whatever engine `sim` is configured with — the per-round
/// [`Simulator::step_round`] path, so the event-driven engine's frontier
/// bookkeeping is exercised while every round is still materialised and
/// checkable. Returns the coverage counters, or the first violation.
pub fn audit_wake_hints<N: RadioNode + Clone>(
    sim: &mut Simulator<N>,
    rounds: u64,
) -> Result<WakeHintAudit, WakeHintViolation> {
    let mut audit = check_current_state(sim, 0, rounds)?;
    for _ in 0..rounds {
        sim.step_round();
        let round = sim.current_round();
        audit.absorb(check_current_state(
            sim,
            round,
            rounds.saturating_sub(round),
        )?);
    }
    Ok(audit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Action;
    use crate::simulator::Engine;
    use std::sync::Arc;

    /// A node that, once informed, waits quietly for a fixed 3 rounds and
    /// then transmits once. `honest` controls whether its hint stops at
    /// the truth (the countdown ticks, so no promise may cover it) or
    /// overpromises across the countdown and its own transmission.
    #[derive(Debug, Clone)]
    struct DelayedTalker {
        informed: bool,
        countdown: Option<u64>,
        honest: bool,
    }

    impl DelayedTalker {
        fn network(n: usize, honest: bool) -> Vec<Self> {
            (0..n)
                .map(|v| DelayedTalker {
                    informed: v == 0,
                    countdown: (v == 0).then_some(0),
                    honest,
                })
                .collect()
        }
    }

    impl RadioNode for DelayedTalker {
        type Msg = u64;
        fn step(&mut self) -> Action<u64> {
            if let Some(c) = self.countdown {
                if c == 0 {
                    self.countdown = None;
                    return Action::Transmit(1);
                }
                self.countdown = Some(c - 1);
            }
            Action::Listen
        }
        fn receive(&mut self, heard: Option<&u64>) {
            if heard.is_some() && !self.informed {
                self.informed = true;
                self.countdown = Some(3);
            }
        }
        fn wake_hint(&self) -> u64 {
            match self.countdown {
                // Truthful: a ticking countdown IS a state change, so an
                // honest node may only promise 0 here. A dishonest one
                // promises straight through its own transmission.
                Some(c) => {
                    if self.honest {
                        0
                    } else {
                        c + 2
                    }
                }
                // No countdown pending: dormant until it hears something.
                None => u64::MAX,
            }
        }
        fn state_digest(&self) -> u64 {
            crate::digest::Digest::new(0xD31A)
                .flag(self.informed)
                .opt(self.countdown)
                .finish()
        }
    }

    fn path3() -> Arc<rn_graph::Graph> {
        Arc::new(rn_graph::Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap())
    }

    #[test]
    fn honest_protocol_passes_on_all_engines() {
        for engine in [
            Engine::TransmitterCentric,
            Engine::ListenerCentric,
            Engine::EventDriven,
        ] {
            let mut sim =
                Simulator::new(path3(), DelayedTalker::network(3, true)).with_engine(engine);
            let audit = audit_wake_hints(&mut sim, 20).expect("honest hints certify");
            assert!(audit.states_checked >= 60);
            assert!(audit.hints_audited > 0, "MAX hints were replayed");
            assert!(audit.steps_replayed > 0);
        }
    }

    #[test]
    fn overpromising_protocol_is_caught_with_location() {
        let mut sim = Simulator::new(path3(), DelayedTalker::network(3, false));
        let violation = audit_wake_hints(&mut sim, 20).expect_err("overpromise must be caught");
        // The dishonest hint spans the countdown: the replay either sees
        // the transmission or the ticking digest, whichever the span hits
        // first — here the countdown ticks immediately.
        assert!(matches!(
            violation.kind,
            HintViolationKind::StateDrift { .. } | HintViolationKind::TransmittedDuringSpan
        ));
        assert!(violation.offset >= 1);
        assert!(violation.hint >= 2);
    }
}
