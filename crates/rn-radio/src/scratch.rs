//! Reusable per-round scratch buffers for the transmitter-centric simulator.
//!
//! Every round of a simulation needs a handful of working arrays: the list of
//! this round's transmitters and, per listener, how many neighbours
//! transmitted and who the unique sender was. Allocating those per round (as
//! the original listener-centric engine did) puts two heap allocations and an
//! O(n) clear on the hot path of every round. [`RoundScratch`] hoists them
//! out: the buffers live on the [`Simulator`](crate::Simulator), are reused
//! round after round, and can be recycled *across* simulations — `Session`
//! batch runs in `rn-broadcast` pool them so thousands of runs on one
//! topology share a handful of scratch allocations.
//!
//! Clearing between rounds costs nothing at all: the per-listener entries are
//! guarded by a monotonically increasing **generation stamp**. A round bumps
//! `generation`, and an entry of `hit_count`/`last_sender` is valid only when
//! the listener's `stamp` equals the current generation. Stale entries from
//! earlier rounds (or from an earlier simulation reusing the same scratch)
//! are never read, so there is no per-round zeroing — not even of the touched
//! subset. The stamp is a `u64`, so it cannot wrap within any feasible run.
//!
//! The buffers are deliberately message-type agnostic (plain integers), which
//! is what lets one pool serve simulations of different protocols; the only
//! generic per-round buffer — the transmitted-message vector — lives on the
//! simulator itself and is likewise reused in place.

use rn_graph::NodeId;

/// Reusable working memory for [`Simulator::step_round`](crate::Simulator).
///
/// Obtain one implicitly via [`Simulator::new`](crate::Simulator::new), or
/// explicitly with [`RoundScratch::default`] and install it with
/// [`Simulator::with_scratch`](crate::Simulator::with_scratch); recover it
/// for reuse with [`Simulator::take_scratch`](crate::Simulator::take_scratch).
/// A scratch adapts itself to any node count, so one instance can serve
/// simulations on different graphs.
#[derive(Debug, Default)]
pub struct RoundScratch {
    /// Nodes that transmitted this round, in increasing node order.
    pub(crate) transmitters: Vec<NodeId>,
    /// Generation stamp per node; `hit_count`/`last_sender` entries are valid
    /// only where `stamp[v] == generation`.
    pub(crate) stamp: Vec<u64>,
    /// Number of transmitting neighbours of each listener this round.
    pub(crate) hit_count: Vec<u32>,
    /// The most recent transmitting neighbour of each listener this round
    /// (the unique sender whenever `hit_count == 1`).
    pub(crate) last_sender: Vec<NodeId>,
    /// Generation stamp marking this round's transmitters; `tx_index`
    /// entries are valid only where `tx_stamp[v] == generation`. Listeners
    /// are never written here — a listening round leaves zero scratch
    /// writes for the node in the decide pass.
    pub(crate) tx_stamp: Vec<u64>,
    /// Index of `v`'s message in the simulator's per-round transmitted
    /// message buffer, valid only under the current `tx_stamp`.
    pub(crate) tx_index: Vec<u32>,
    /// Current round's generation stamp. Strictly increases every round and
    /// is never reset, so entries written under earlier generations — in this
    /// simulation or a previous one sharing the scratch — are dead on arrival.
    pub(crate) generation: u64,
}

impl RoundScratch {
    /// Creates an empty scratch; it grows to fit on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a scratch pre-sized for graphs of `n` nodes.
    pub fn for_nodes(n: usize) -> Self {
        let mut s = Self::default();
        s.ensure_nodes(n);
        s
    }

    /// Grows the per-node arrays to cover `n` nodes.
    ///
    /// Growth preserves the generation discipline: new entries carry stamp 0,
    /// which can never equal the (strictly positive, strictly increasing)
    /// per-round generation, so they read as "untouched". Shrinking never
    /// happens — a larger-than-needed scratch is simply partially used.
    pub(crate) fn ensure_nodes(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.hit_count.resize(n, 0);
            self.last_sender.resize(n, 0);
            self.tx_stamp.resize(n, 0);
            self.tx_index.resize(n, 0);
        }
    }

    /// Number of nodes the per-node arrays currently cover.
    pub fn capacity(&self) -> usize {
        self.stamp.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_and_never_shrinks() {
        let mut s = RoundScratch::new();
        assert_eq!(s.capacity(), 0);
        s.ensure_nodes(10);
        assert_eq!(s.capacity(), 10);
        s.ensure_nodes(4);
        assert_eq!(s.capacity(), 10, "shrinking is never needed");
        s.ensure_nodes(16);
        assert_eq!(s.capacity(), 16);
    }

    #[test]
    fn growth_preserves_generation_safety() {
        let mut s = RoundScratch::for_nodes(2);
        s.generation = 7;
        s.stamp[0] = 7;
        s.ensure_nodes(5);
        // Old entries keep their stamps; new entries read as untouched.
        assert_eq!(s.stamp[0], 7);
        assert!(s.stamp[2..].iter().all(|&g| g == 0));
    }
}
