//! Execution traces: a per-round record of who transmitted, who heard what,
//! and where collisions happened.
//!
//! Traces are what the experiment harness uses to reproduce Figure 1 of the
//! paper (the per-node transmit/receive round numbers) and to verify the
//! characterisation of Lemma 2.8 (exactly the DOM_i nodes transmit in round
//! 2i−1, exactly the NEW_i nodes are newly informed).

use crate::fault::FaultKind;
use crate::message::RadioMessage;
use rn_graph::NodeId;

/// What happened at one node in one round, as seen by an omniscient observer
/// (the nodes themselves never see this).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeEvent<M> {
    /// The node transmitted the given message.
    Transmitted(M),
    /// The node listened and heard a message from the given neighbour.
    Heard {
        /// The transmitting neighbour.
        from: NodeId,
        /// The message received.
        message: M,
    },
    /// The node listened and heard nothing because two or more neighbours
    /// transmitted simultaneously.
    Collision {
        /// Number of neighbours that transmitted.
        transmitting_neighbors: usize,
    },
    /// The node listened and heard nothing because no neighbour transmitted.
    Silence,
    /// The node's round was consumed by an injected fault (see
    /// [`crate::fault`]): it was dead, asleep, jamming, or its reception was
    /// dropped or garbled beyond decoding. Fault-free executions never
    /// record this event.
    Faulted(FaultKind),
}

/// Complete record of one round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundRecord<M> {
    /// 1-based round number (the paper numbers rounds from 1).
    pub round: u64,
    /// Per-node events, indexed by node id.
    pub events: Vec<NodeEvent<M>>,
}

impl<M: RadioMessage> RoundRecord<M> {
    /// Nodes that transmitted in this round, in increasing order.
    pub fn transmitters(&self) -> Vec<NodeId> {
        self.events
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e, NodeEvent::Transmitted(_)))
            .map(|(v, _)| v)
            .collect()
    }

    /// Nodes that successfully received a message in this round.
    pub fn receivers(&self) -> Vec<NodeId> {
        self.events
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e, NodeEvent::Heard { .. }))
            .map(|(v, _)| v)
            .collect()
    }

    /// Nodes at which a collision occurred in this round.
    pub fn collision_nodes(&self) -> Vec<NodeId> {
        self.events
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e, NodeEvent::Collision { .. }))
            .map(|(v, _)| v)
            .collect()
    }

    /// Total number of bits transmitted in this round.
    pub fn bits_transmitted(&self) -> usize {
        self.events
            .iter()
            .map(|e| match e {
                NodeEvent::Transmitted(m) => m.bit_size(),
                _ => 0,
            })
            .sum()
    }
}

/// A full execution trace: one [`RoundRecord`] per executed round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace<M> {
    /// The per-round records in execution order (index 0 is round 1).
    pub rounds: Vec<RoundRecord<M>>,
}

impl<M: RadioMessage> Trace<M> {
    /// An empty trace.
    pub fn new() -> Self {
        Trace { rounds: Vec::new() }
    }

    /// Number of recorded rounds.
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// All rounds in which node `v` transmitted (1-based round numbers).
    pub fn transmit_rounds(&self, v: NodeId) -> Vec<u64> {
        self.rounds
            .iter()
            .filter(|r| matches!(r.events.get(v), Some(NodeEvent::Transmitted(_))))
            .map(|r| r.round)
            .collect()
    }

    /// All rounds in which node `v` successfully received a message.
    pub fn receive_rounds(&self, v: NodeId) -> Vec<u64> {
        self.rounds
            .iter()
            .filter(|r| matches!(r.events.get(v), Some(NodeEvent::Heard { .. })))
            .map(|r| r.round)
            .collect()
    }

    /// The first round in which node `v` successfully received a message.
    pub fn first_receive_round(&self, v: NodeId) -> Option<u64> {
        self.receive_rounds(v).into_iter().next()
    }

    /// All rounds in which a collision occurred at node `v`.
    pub fn collision_rounds(&self, v: NodeId) -> Vec<u64> {
        self.rounds
            .iter()
            .filter(|r| matches!(r.events.get(v), Some(NodeEvent::Collision { .. })))
            .map(|r| r.round)
            .collect()
    }

    /// All rounds in which an injected fault consumed node `v`'s round
    /// (see [`NodeEvent::Faulted`]); empty for fault-free executions.
    pub fn fault_rounds(&self, v: NodeId) -> Vec<u64> {
        self.rounds
            .iter()
            .filter(|r| matches!(r.events.get(v), Some(NodeEvent::Faulted(_))))
            .map(|r| r.round)
            .collect()
    }

    /// Round in which each of the `node_count` nodes first heard a message
    /// matching `pred`, or `None` for nodes that never did.
    ///
    /// The per-message trace query for multi-message workloads: with `pred`
    /// selecting the messages that carry payload `j`, entry `v` is the
    /// round node `v` first received message `j` *over the air*. A node
    /// holding `j` from the start — its source — never hears it "first"
    /// and reads as `None` here, so analyses overlay origin knowledge
    /// (live completion accounting comes from node state instead, which
    /// also works with tracing off; the multi-broadcast tests use this
    /// query to cross-check that accounting against the recorded trace).
    ///
    /// Calling this once per message scans the whole trace `k` times; when
    /// all `k` per-message answers are needed, use the single-pass
    /// [`first_receive_rounds_bucketed`](Self::first_receive_rounds_bucketed)
    /// instead (this method delegates to it with one bucket).
    pub fn first_receive_rounds_matching<F>(&self, node_count: usize, pred: F) -> Vec<Option<u64>>
    where
        F: Fn(&M) -> bool,
    {
        self.first_receive_rounds_bucketed(node_count, 1, |m, emit| {
            if pred(m) {
                emit(0);
            }
        })
        .pop()
        .expect("one bucket was requested")
    }

    /// For each of `keys` message keys, the round in which each of the
    /// `node_count` nodes first heard a message carrying that key — all in
    /// **one scan** of the trace. Entry `[j][v]` is the first round node
    /// `v` heard key `j` over the air, or `None` if it never did.
    ///
    /// `keys_of` enumerates the keys a message carries by calling `emit`
    /// once per key (a multi-broadcast relay carries one source index, a
    /// gossip token or bundle carries every index it has accumulated);
    /// emitted keys `>= keys` are ignored. This replaces `k` separate
    /// [`first_receive_rounds_matching`](Self::first_receive_rounds_matching)
    /// scans — `O(k · rounds · n)` — with one `O(rounds · n)` pass, which
    /// is what keeps per-message completion accounting affordable once
    /// gossip makes `k = n`.
    pub fn first_receive_rounds_bucketed<F>(
        &self,
        node_count: usize,
        keys: usize,
        mut keys_of: F,
    ) -> Vec<Vec<Option<u64>>>
    where
        F: FnMut(&M, &mut dyn FnMut(usize)),
    {
        let mut first = vec![vec![None; node_count]; keys];
        for r in &self.rounds {
            for (v, event) in r.events.iter().enumerate() {
                if let NodeEvent::Heard { message, .. } = event {
                    if v >= node_count {
                        continue;
                    }
                    keys_of(message, &mut |j| {
                        if let Some(slot) = first.get_mut(j) {
                            if slot[v].is_none() {
                                slot[v] = Some(r.round);
                            }
                        }
                    });
                }
            }
        }
        first
    }

    /// The message node `v` heard in a specific round, if any.
    pub fn heard_in_round(&self, v: NodeId, round: u64) -> Option<&M> {
        self.rounds
            .iter()
            .find(|r| r.round == round)
            .and_then(|r| match r.events.get(v) {
                Some(NodeEvent::Heard { message, .. }) => Some(message),
                _ => None,
            })
    }
}

impl<M: RadioMessage> Default for Trace<M> {
    fn default() -> Self {
        Self::new()
    }
}

/// What happened at one node in one round, with the message contents
/// erased — the [`NodeEvent`] skeleton shared by every protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShapeEvent {
    /// The node transmitted (some message).
    Transmitted,
    /// The node heard (some message) from the given neighbour.
    Heard {
        /// The transmitting neighbour.
        from: NodeId,
    },
    /// The node listened into a collision.
    Collision {
        /// Number of neighbours that transmitted.
        transmitting_neighbors: usize,
    },
    /// The node listened into silence.
    Silence,
    /// An injected fault consumed the node's round.
    Faulted(FaultKind),
}

/// One round of a [`TraceShape`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeRound {
    /// 1-based round number.
    pub round: u64,
    /// Per-node events, indexed by node id.
    pub events: Vec<ShapeEvent>,
}

/// A message-agnostic execution trace: the per-round transmit / heard /
/// collision / silence skeleton with payloads erased.
///
/// The bounded model checker (`rn-modelcheck`) verifies per-round physics
/// invariants — a `Heard` requires exactly one transmitting neighbour, a
/// `Collision { k }` exactly `k` — generically over every scheme, which a
/// message-typed [`Trace<M>`] cannot express in one type. Obtained from
/// [`Trace::shape`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceShape {
    /// The per-round records in execution order.
    pub rounds: Vec<ShapeRound>,
}

impl TraceShape {
    /// The nodes that transmitted in the round **recorded at index** `i`
    /// (including jamming nodes, which occupy the channel like a
    /// transmitter), in increasing order.
    pub fn transmitters_at(&self, i: usize) -> Vec<NodeId> {
        self.rounds[i]
            .events
            .iter()
            .enumerate()
            .filter(|(_, e)| {
                matches!(
                    e,
                    ShapeEvent::Transmitted | ShapeEvent::Faulted(FaultKind::Jamming)
                )
            })
            .map(|(v, _)| v)
            .collect()
    }
}

impl<M: RadioMessage> Trace<M> {
    /// The message-agnostic skeleton of this trace (see [`TraceShape`]).
    pub fn shape(&self) -> TraceShape {
        TraceShape {
            rounds: self
                .rounds
                .iter()
                .map(|r| ShapeRound {
                    round: r.round,
                    events: r
                        .events
                        .iter()
                        .map(|e| match e {
                            NodeEvent::Transmitted(_) => ShapeEvent::Transmitted,
                            NodeEvent::Heard { from, .. } => ShapeEvent::Heard { from: *from },
                            NodeEvent::Collision {
                                transmitting_neighbors,
                            } => ShapeEvent::Collision {
                                transmitting_neighbors: *transmitting_neighbors,
                            },
                            NodeEvent::Silence => ShapeEvent::Silence,
                            NodeEvent::Faulted(kind) => ShapeEvent::Faulted(*kind),
                        })
                        .collect(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace<u64> {
        Trace {
            rounds: vec![
                RoundRecord {
                    round: 1,
                    events: vec![
                        NodeEvent::Transmitted(9),
                        NodeEvent::Heard {
                            from: 0,
                            message: 9,
                        },
                        NodeEvent::Silence,
                    ],
                },
                RoundRecord {
                    round: 2,
                    events: vec![
                        NodeEvent::Silence,
                        NodeEvent::Transmitted(9),
                        NodeEvent::Collision {
                            transmitting_neighbors: 2,
                        },
                    ],
                },
            ],
        }
    }

    #[test]
    fn round_record_accessors() {
        let t = sample_trace();
        assert_eq!(t.rounds[0].transmitters(), vec![0]);
        assert_eq!(t.rounds[0].receivers(), vec![1]);
        assert!(t.rounds[0].collision_nodes().is_empty());
        assert_eq!(t.rounds[1].collision_nodes(), vec![2]);
        assert_eq!(t.rounds[0].bits_transmitted(), 4); // 9 needs 4 bits
    }

    #[test]
    fn trace_per_node_queries() {
        let t = sample_trace();
        assert_eq!(t.transmit_rounds(0), vec![1]);
        assert_eq!(t.transmit_rounds(1), vec![2]);
        assert_eq!(t.receive_rounds(1), vec![1]);
        assert_eq!(t.first_receive_round(1), Some(1));
        assert_eq!(t.first_receive_round(2), None);
        assert_eq!(t.collision_rounds(2), vec![2]);
        assert_eq!(t.heard_in_round(1, 1), Some(&9));
        assert_eq!(t.heard_in_round(1, 2), None);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn first_receive_rounds_matching_filters_by_message() {
        let t = sample_trace();
        // Node 1 hears 9 in round 1; nobody else hears anything.
        assert_eq!(
            t.first_receive_rounds_matching(3, |&m| m == 9),
            vec![None, Some(1), None]
        );
        assert_eq!(
            t.first_receive_rounds_matching(3, |&m| m == 4),
            vec![None, None, None]
        );
    }

    #[test]
    fn bucketed_query_matches_per_key_scans() {
        let t = sample_trace();
        let bucketed = t.first_receive_rounds_bucketed(3, 2, |&m, emit| {
            if m == 9 {
                emit(0);
            }
            if m >= 4 {
                emit(1);
            }
        });
        assert_eq!(bucketed[0], t.first_receive_rounds_matching(3, |&m| m == 9));
        assert_eq!(bucketed[1], t.first_receive_rounds_matching(3, |&m| m >= 4));
        // A message may carry several keys; out-of-range keys are ignored.
        let none = t.first_receive_rounds_bucketed(3, 1, |_, emit| emit(5));
        assert_eq!(none, vec![vec![None, None, None]]);
    }

    #[test]
    fn empty_trace_defaults() {
        let t: Trace<u64> = Trace::default();
        assert!(t.is_empty());
        assert_eq!(t.first_receive_round(0), None);
    }
}
