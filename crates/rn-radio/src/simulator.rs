//! The synchronous round-by-round simulator.
//!
//! [`Simulator`] owns the graph and one [`RadioNode`] per graph node, and
//! executes the radio model of §1.1 of the paper faithfully:
//!
//! * every round, every node chooses to transmit or listen
//!   ([`RadioNode::step`]);
//! * a listening node receives a message iff exactly one of its neighbours
//!   transmitted; otherwise it observes nothing (and cannot distinguish
//!   silence from collision);
//! * transmitting nodes observe nothing.
//!
//! The simulator records a full [`Trace`] for the harness and supports
//! flexible stop conditions so experiments can run "until all nodes are
//! informed", "for exactly k rounds", or "until the trace goes quiet".
//!
//! # Engine design: transmitter-centric delivery over CSR rows
//!
//! The paper's protocols produce long executions in which most rounds have
//! very few transmitters (often one, frequently zero in quiet tails), so the
//! default engine resolves delivery from the transmitters outward rather
//! than by scanning every listener's neighbourhood:
//!
//! 1. **Decide** — every node takes its [`RadioNode::step`]; transmitters
//!    are collected in the same pass (no separate counting sweep), each
//!    recorded sparsely as a generation mark plus its message moved into a
//!    reused buffer. Listening nodes write **nothing**, so the pass's memory
//!    traffic is proportional to the number of transmitters, not to `n`.
//! 2. **Mark** — for each transmitter `t`, walk its contiguous CSR neighbour
//!    slice ([`Graph::neighbors`]) and bump the neighbour's
//!    `(hit_count, last_sender)` entry in the [`RoundScratch`]. This is the
//!    only part of the round that touches the adjacency structure, and it
//!    costs O(Σ deg(t) over transmitters) — not O(Σ deg(v) over listeners).
//! 3. **Observe** — one linear pass over the nodes delivers observations:
//!    a listener with `hit_count == 1` receives the unique sender's message
//!    *by reference* (no clone; the trace, if recording, makes the only
//!    copy), any other listener observes `None`, and the collision trace
//!    event reads its neighbour count straight out of `hit_count` — the
//!    delivery pass already computed it.
//!
//! Steady-state rounds perform **zero heap allocations** with tracing off:
//! the transmitted-message buffer, the transmitter list and the per-listener
//! arrays all live in the [`RoundScratch`] / simulator and are reused every
//! round, and clearing is free because scratch entries are validated by a
//! per-round generation stamp instead of being zeroed (see
//! [`crate::scratch`]).
//!
//! Invariants the engine relies on:
//!
//! * `scratch.generation` strictly increases across rounds (and across
//!   simulations sharing a recycled scratch), so a stale
//!   `hit_count`/`last_sender` entry can never alias a current one;
//! * the scratch's per-node arrays cover at least `graph.node_count()`
//!   entries (enforced whenever a scratch is installed);
//! * `last_sender[v]` is the unique transmitting neighbour whenever
//!   `hit_count[v] == 1`, because each marking pass writes it on the first
//!   hit of the round — and neighbour slices are sorted, so it equals the
//!   first transmitting neighbour in node order, matching the reference
//!   engine's `Heard::from` exactly.
//!
//! The original listener-centric delivery is retained, verbatim, as
//! [`Simulator::step_round_reference`] behind [`Engine::ListenerCentric`]:
//! it is the executable specification the equivalence suite checks the fast
//! engine against, round for round and event for event.
//!
//! # Event-driven frontier engine
//!
//! The paper's protocols spend most of a long execution dormant: on a path,
//! Algorithm B's wave involves a handful of nodes per round and the quiet
//! tail involves none, yet both per-round engines still pay O(n) `step`/
//! `receive` driving every round. [`Engine::EventDriven`] removes that
//! floor. Nodes advertise dormancy through [`RadioNode::wake_hint`] — a
//! *frozen-state* promise that their next `h` rounds would be silent
//! listening with no state change — and the engine keeps a wake queue
//! (`next_wake` array + lazily-deleted min-heap, with a swap buffer that
//! bypasses the heap for next-round wakes so hint-less protocols stay at
//! O(active) per round). Each round only the **active frontier** is driven:
//! due nodes (hints expired, jam-interval starts, late-wake rounds) are
//! stepped, delivery runs over the same generation-stamped scratch, and a
//! dormant listener is touched only when a transmitter marks it — woken
//! exactly when it decodes a message. With tracing off,
//! [`Simulator::run_until`] additionally **elides provably quiet spans**:
//! when the earliest pending wake is `k > 1` rounds away, no node can act
//! in between (dormant nodes are frozen, jammers are forced awake), so the
//! clock jumps while the quiet-streak arithmetic advances exactly as if the
//! rounds had run. Traces (tracing on disables elision and materialises
//! every round), observations, `rounds_executed`, quiet detection and
//! fault application are bit-identical to the per-round engines — the
//! default hint of 0 degenerates to exact per-round driving, and the
//! three-engine equivalence matrix in `tests/engine_equivalence.rs` pins
//! the rest.

use crate::fault::{CompiledFaults, FaultKind, FaultPlan, RxFault};
use crate::message::RadioMessage;
use crate::node::{Action, RadioNode};
use crate::scratch::RoundScratch;
use crate::trace::{NodeEvent, RoundRecord, Trace};
use rn_graph::{Graph, NodeId};
use rn_telemetry::{MetricsSink, RoundMetrics, RunCounters};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Sentinel `tx_index` marking a jamming node in the decide pass: a jammer
/// occupies a transmitter slot (it keeps the channel busy) but has no entry
/// in the message buffer. Real indices cannot collide with it — the message
/// buffer holds at most one entry per node and node counts are bounded far
/// below `u32::MAX` by the CSR offsets.
const JAMMER: u32 = u32::MAX;

/// Which delivery engine [`Simulator::step_round`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The transmitter-centric, allocation-free engine (the default): only
    /// transmitters' CSR neighbour slices are walked each round.
    #[default]
    TransmitterCentric,
    /// The original listener-centric engine, retained as an executable
    /// reference implementation: every listener scans its neighbour list.
    /// Slower by design; exists so equivalence tests (and sceptical users)
    /// can replay any workload on every engine and compare traces.
    ListenerCentric,
    /// The event-driven frontier engine: nodes advertise dormancy via
    /// [`RadioNode::wake_hint`], only the active frontier is driven each
    /// round, and — with tracing off — [`Simulator::run_until`]
    /// batch-advances the clock over provably quiet stretches. Traces,
    /// observations, outcomes and fault application are bit-identical to
    /// the other two engines (see the module docs for the contract).
    EventDriven,
}

/// Wake-queue bookkeeping of [`Engine::EventDriven`]. Message-agnostic, but
/// deliberately kept on the [`Simulator`] rather than inside the pooled
/// [`RoundScratch`]: scratch instances migrate across simulations, while a
/// wake queue is meaningful only for the run that seeded it.
struct EventState {
    /// Authoritative next round each node must be driven in; `u64::MAX`
    /// means dormant until a decodable reception wakes it.
    next_wake: Vec<u64>,
    /// The round each node's live queue entry targets; deduplicates pushes.
    /// An entry whose round no longer matches `next_wake` is stale and is
    /// dropped lazily when it surfaces.
    enqueued_for: Vec<u64>,
    /// The round each node was last put on the due list; keeps a node from
    /// being driven twice when several queues wake it at once.
    due_stamp: Vec<u64>,
    /// Min-heap of `(wake_round, node)` for wake-ups two or more rounds out
    /// (plus the initial all-nodes seeding).
    heap: BinaryHeap<Reverse<(u64, NodeId)>>,
    /// Forced wake-ups at jam-interval starts: a jammer occupies the
    /// channel (and resets quiet detection) even while its protocol is
    /// dormant, so elision must never skip a jam round.
    fault_wakes: BinaryHeap<Reverse<(u64, NodeId)>>,
    /// The current round's due list (reused across rounds).
    due: Vec<NodeId>,
    /// Nodes scheduled for the immediately following round. Bypasses the
    /// heap so a hint-less protocol (every node due every round) costs
    /// O(n) per round, not O(n log n).
    due_next: Vec<NodeId>,
    /// Which round `due_next` currently collects for.
    due_next_round: u64,
    /// Dormant nodes marked by this round's transmitters (tracing off
    /// only): the complete set of wake-by-reception candidates.
    touched: Vec<NodeId>,
}

impl EventState {
    /// Records that node `v` must next be driven in round `wake`
    /// (`u64::MAX` parks it) and queues an entry unless one targeting
    /// exactly that round is already live. `round` is the round currently
    /// executing; a `wake` of `round + 1` takes the cheap swap buffer, any
    /// later round goes through the heap.
    fn schedule(&mut self, v: NodeId, round: u64, wake: u64) {
        self.next_wake[v] = wake;
        if wake == u64::MAX || self.enqueued_for[v] == wake {
            return;
        }
        self.enqueued_for[v] = wake;
        if wake == round + 1 {
            if self.due_next_round != wake {
                self.due_next.clear();
                self.due_next_round = wake;
            }
            self.due_next.push(v);
        } else {
            self.heap.push(Reverse((wake, v)));
        }
    }
}

/// The round a node driven in `round` with dormancy hint `hint` must next
/// be driven in (`u64::MAX` = parked until a reception wakes it).
#[inline]
fn wake_after(round: u64, hint: u64) -> u64 {
    round.saturating_add(1).saturating_add(hint)
}

/// Delivers one successful reception through the receive-side fault filter —
/// the single copy of the Drop/Corrupt/clean logic all three engines share.
///
/// Returns `(decoded, rx_faulted, event)`: whether the node was actually
/// handed a message (`receive(Some(_))` — the event-driven engine wakes
/// dormant listeners exactly on this), whether a receive-side fault was
/// consumed (drop or corruption, decodable or not — the engines' `rx_faults`
/// counter), and the trace event describing the outcome (`None` when
/// `record` is off; the message is cloned only for the trace).
fn deliver_with_rx_faults<N: RadioNode>(
    node: &mut N,
    v: NodeId,
    sender: NodeId,
    msg: &N::Msg,
    rx_window: &[(u64, NodeId, RxFault)],
    record: bool,
) -> (bool, bool, Option<NodeEvent<N::Msg>>) {
    match CompiledFaults::rx_fault(rx_window, v) {
        Some(RxFault::Drop) => {
            node.receive(None);
            (
                false,
                true,
                record.then(|| NodeEvent::Faulted(FaultKind::Dropped)),
            )
        }
        Some(RxFault::Corrupt) => match msg.corrupted() {
            Some(garbled) => {
                node.receive(Some(&garbled));
                let event = record.then(|| NodeEvent::Heard {
                    from: sender,
                    message: garbled,
                });
                (true, true, event)
            }
            None => {
                node.receive(None);
                (
                    false,
                    true,
                    record.then(|| NodeEvent::Faulted(FaultKind::Corrupted)),
                )
            }
        },
        None => {
            node.receive(Some(msg));
            let event = record.then(|| NodeEvent::Heard {
                from: sender,
                message: msg.clone(),
            });
            (true, false, event)
        }
    }
}

/// Sums the per-round protocol message sizes for the metrics block: total
/// bits on the channel and the largest single message. Only called when a
/// sink is installed — `bit_size` may be nontrivial per message.
fn message_bits<M: RadioMessage>(messages: &[M]) -> (u64, u64) {
    let mut total = 0u64;
    let mut max = 0u64;
    for m in messages {
        let bits = m.bit_size() as u64;
        total += bits;
        max = max.max(bits);
    }
    (total, max)
}

/// When the simulation should stop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopCondition {
    /// Run exactly this many rounds.
    AfterRounds(u64),
    /// Run until a round in which nobody transmits (the network has gone
    /// quiet), or until the given safety cap, whichever comes first.
    QuietOrCap(u64),
    /// Run until nobody has transmitted for `quiet` consecutive rounds, or
    /// until the `cap`, whichever comes first. Useful for protocols (like
    /// Algorithm B) that legitimately have isolated silent rounds in the
    /// middle of an execution.
    QuietFor {
        /// Number of consecutive silent rounds that ends the run.
        quiet: u64,
        /// Safety cap on the total number of rounds.
        cap: u64,
    },
}

impl StopCondition {
    /// The hard upper bound on executed rounds this condition allows —
    /// the quantity the model checker's round-cap invariant audits
    /// `RunOutcome::rounds_executed` against.
    pub fn cap(&self) -> u64 {
        match *self {
            StopCondition::AfterRounds(cap)
            | StopCondition::QuietOrCap(cap)
            | StopCondition::QuietFor { cap, .. } => cap,
        }
    }
}

/// Why the simulation stopped and how long it ran.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// Number of rounds executed.
    pub rounds_executed: u64,
    /// Whether the run ended because a user predicate returned true.
    pub predicate_satisfied: bool,
    /// Whether the run ended because the network went quiet (only possible
    /// with [`StopCondition::QuietOrCap`]).
    pub went_quiet: bool,
}

/// The synchronous radio-network simulator.
///
/// The graph is held behind an [`Arc`], so many simulators — for example the
/// repeated runs of one `Session`, or the parallel jobs of a batch — can
/// share a single topology without per-run copies. Plain [`Graph`] values are
/// still accepted everywhere via `impl Into<Arc<Graph>>`.
pub struct Simulator<N: RadioNode> {
    graph: Arc<Graph>,
    nodes: Vec<N>,
    trace: Trace<N::Msg>,
    round: u64,
    record_trace: bool,
    engine: Engine,
    /// Reusable numeric working arrays (see [`crate::scratch`]).
    scratch: RoundScratch,
    /// Reused per-round buffer of the transmitted messages, in transmitter
    /// order; cleared (capacity kept) and refilled by every decide pass.
    /// Listeners never touch it — the round's memory traffic is proportional
    /// to the number of transmitters, not to `n`.
    tx_messages: Vec<N::Msg>,
    /// Compiled fault schedule, `None` for fault-free runs (the common case:
    /// every fault check below starts with this cheap `Option` test, and an
    /// empty [`FaultPlan`] never compiles to `Some`).
    faults: Option<CompiledFaults>,
    /// Wake-queue state of [`Engine::EventDriven`], seeded lazily on the
    /// first event-driven round; `None` under the per-round engines.
    event: Option<EventState>,
    /// Installed metrics sink, `None` in the common uninstrumented case:
    /// every per-round reporting block sits behind this one `Option` test,
    /// so with no sink the engines take exactly their pre-telemetry paths —
    /// no allocations, no message-size summation, no virtual calls.
    metrics: Option<Box<dyn MetricsSink + Send>>,
}

impl<N: RadioNode> Simulator<N> {
    /// Creates a simulator for `graph` with one protocol instance per node.
    ///
    /// Accepts an owned [`Graph`] or a shared `Arc<Graph>`; passing an `Arc`
    /// lets repeated runs on the same topology avoid cloning it.
    ///
    /// # Panics
    /// Panics if `nodes.len() != graph.node_count()`.
    pub fn new(graph: impl Into<Arc<Graph>>, nodes: Vec<N>) -> Self {
        let graph = graph.into();
        assert_eq!(
            nodes.len(),
            graph.node_count(),
            "need exactly one protocol instance per graph node"
        );
        Simulator {
            graph,
            nodes,
            trace: Trace::new(),
            round: 0,
            record_trace: true,
            engine: Engine::default(),
            // Deliberately empty: it grows on the first round, and Session
            // runs replace it with a pooled scratch before stepping — an
            // eagerly sized scratch here would be allocated just to be
            // thrown away on every pooled run.
            scratch: RoundScratch::new(),
            tx_messages: Vec::new(),
            faults: None,
            event: None,
            metrics: None,
        }
    }

    /// Installs a [`FaultPlan`] (see [`crate::fault`]): the scheduled events
    /// are applied by the engine — identically in all three [`Engine`]s —
    /// while the nodes keep running their unmodified protocol.
    ///
    /// An empty plan installs nothing at all, so a simulator given
    /// [`FaultPlan::none`] is byte-identical in behaviour (traces,
    /// observations, statistics) to one that was never given a plan.
    ///
    /// # Panics
    /// Panics if the plan targets a node outside this graph.
    pub fn with_faults(mut self, plan: &FaultPlan) -> Self {
        self.faults = if plan.is_empty() {
            None
        } else {
            Some(CompiledFaults::compile(plan, self.graph.node_count()))
        };
        self
    }

    /// Disables trace recording (saves memory for very long benchmark runs).
    pub fn without_trace(mut self) -> Self {
        self.record_trace = false;
        self
    }

    /// Selects the delivery engine (default [`Engine::TransmitterCentric`]).
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Installs a recycled [`RoundScratch`], replacing the simulator's own.
    ///
    /// The scratch is grown to cover this graph if needed; its generation
    /// counter carries over, which is exactly what keeps stale entries from
    /// previous simulations unreadable. Batch drivers use this together with
    /// [`take_scratch`](Self::take_scratch) to amortize per-round buffers
    /// across many runs.
    pub fn with_scratch(mut self, mut scratch: RoundScratch) -> Self {
        scratch.ensure_nodes(self.graph.node_count());
        self.scratch = scratch;
        self
    }

    /// Removes and returns the scratch for recycling into another simulator,
    /// leaving this one with an empty scratch that would regrow on demand.
    pub fn take_scratch(&mut self) -> RoundScratch {
        std::mem::take(&mut self.scratch)
    }

    /// Installs a [`MetricsSink`]: every engine reports its deterministic
    /// per-round counters ([`RoundMetrics`]) into it, once per executed
    /// round, plus elided-span notifications from
    /// [`run_until`](Self::run_until). Telemetry never changes behaviour —
    /// traces, observations and outcomes are byte-identical with or without
    /// a sink — and with no sink installed the engines skip every reporting
    /// block behind a single `Option` check.
    pub fn with_metrics(mut self, sink: Box<dyn MetricsSink + Send>) -> Self {
        self.metrics = Some(sink);
        self
    }

    /// Removes and returns the installed metrics sink, if any.
    pub fn take_metrics(&mut self) -> Option<Box<dyn MetricsSink + Send>> {
        self.metrics.take()
    }

    /// Snapshot of the installed sink's aggregate counters, when the sink
    /// keeps them (see [`MetricsSink::counters`]; [`rn_telemetry::CounterSink`]
    /// does, the no-op sink does not).
    pub fn metrics_counters(&self) -> Option<RunCounters> {
        self.metrics.as_ref().and_then(|sink| sink.counters())
    }

    /// The graph being simulated.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Read access to the node states (omniscient harness view; the nodes
    /// themselves never see each other).
    pub fn nodes(&self) -> &[N] {
        &self.nodes
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &Trace<N::Msg> {
        &self.trace
    }

    /// Consumes the simulator, returning the trace and the final node states.
    pub fn into_parts(self) -> (Trace<N::Msg>, Vec<N>) {
        (self.trace, self.nodes)
    }

    /// Number of rounds executed so far.
    pub fn current_round(&self) -> u64 {
        self.round
    }

    /// Executes a single round and returns the number of transmitters.
    pub fn step_round(&mut self) -> usize {
        match self.engine {
            Engine::TransmitterCentric => self.step_round_transmitter_centric(),
            Engine::ListenerCentric => self.step_round_reference(),
            Engine::EventDriven => self.step_round_event_driven(),
        }
    }

    /// One round of the default transmitter-centric engine (see the module
    /// docs for the three-phase design and its invariants).
    fn step_round_transmitter_centric(&mut self) -> usize {
        self.round += 1;
        let round = self.round;
        let n = self.graph.node_count();
        let scratch = &mut self.scratch;
        scratch.ensure_nodes(n);
        scratch.generation += 1;
        let generation = scratch.generation;
        let faults = self.faults.as_ref();

        // Phase 1: every node decides. Transmitters are recorded sparsely —
        // node id, generation mark, and the message moved into the reused
        // message buffer; a listening node writes nothing at all. An inert
        // (crashed/asleep) node is never stepped; a jamming node's protocol
        // is suspended and it occupies a transmitter slot with the JAMMER
        // sentinel instead of a message.
        self.tx_messages.clear();
        scratch.transmitters.clear();
        for (v, node) in self.nodes.iter_mut().enumerate() {
            if let Some(f) = faults {
                if f.inert_kind(v, round).is_some() {
                    continue;
                }
                if f.is_jamming(v, round) {
                    scratch.tx_stamp[v] = generation;
                    scratch.tx_index[v] = JAMMER;
                    scratch.transmitters.push(v);
                    continue;
                }
            }
            match node.step() {
                Action::Transmit(m) => {
                    scratch.tx_stamp[v] = generation;
                    scratch.tx_index[v] = self.tx_messages.len() as u32;
                    scratch.transmitters.push(v);
                    self.tx_messages.push(m);
                }
                Action::Listen => {}
            }
        }

        // Phase 2: mark. Only the transmitters' CSR neighbour slices are
        // walked; each neighbour's (hit_count, last_sender) entry is claimed
        // for this round by stamping it with the current generation.
        for &t in &scratch.transmitters {
            for &w in self.graph.neighbors(t) {
                if scratch.stamp[w] == generation {
                    scratch.hit_count[w] += 1;
                } else {
                    scratch.stamp[w] = generation;
                    scratch.hit_count[w] = 1;
                    scratch.last_sender[w] = t;
                }
            }
        }

        // Phase 3: observe. A listener hears a message iff exactly one
        // neighbour transmitted; the message travels by reference, and the
        // trace (when recording) makes the only clone. Fault handling, all
        // behind the `Option` test: an inert node is deaf (no `receive`), a
        // jammer observes nothing and leaves only a trace marker, a sole
        // jamming "sender" is an undecodable collision, and receive-side
        // Drop/Corrupt faults rewrite a successful reception.
        let mut events: Vec<NodeEvent<N::Msg>> =
            Vec::with_capacity(if self.record_trace { n } else { 0 });
        let tx_stamp = &scratch.tx_stamp[..n];
        let stamp = &scratch.stamp[..n];
        let rx_window = faults.map_or(&[][..], |f| f.rx_window(round));
        // Deterministic round counters for an installed metrics sink; plain
        // register increments, negligible without one.
        let (mut deliveries, mut collisions, mut rx_faults) = (0u64, 0u64, 0u64);
        for (v, node) in self.nodes.iter_mut().enumerate() {
            if let Some(f) = faults {
                if let Some(kind) = f.inert_kind(v, round) {
                    if self.record_trace {
                        events.push(NodeEvent::Faulted(kind));
                    }
                    continue;
                }
            }
            if tx_stamp[v] == generation {
                if scratch.tx_index[v] == JAMMER {
                    if self.record_trace {
                        events.push(NodeEvent::Faulted(FaultKind::Jamming));
                    }
                } else if self.record_trace {
                    let m = &self.tx_messages[scratch.tx_index[v] as usize];
                    events.push(NodeEvent::Transmitted(m.clone()));
                }
            } else if stamp[v] == generation {
                if scratch.hit_count[v] == 1 {
                    let w = scratch.last_sender[v];
                    if scratch.tx_index[w] == JAMMER {
                        // The only transmitting neighbour is a jammer: the
                        // channel is busy but carries nothing decodable.
                        node.receive(None);
                        collisions += 1;
                        if self.record_trace {
                            events.push(NodeEvent::Collision {
                                transmitting_neighbors: 1,
                            });
                        }
                    } else {
                        let msg = &self.tx_messages[scratch.tx_index[w] as usize];
                        let (decoded, rx_faulted, event) =
                            deliver_with_rx_faults(node, v, w, msg, rx_window, self.record_trace);
                        deliveries += u64::from(decoded);
                        rx_faults += u64::from(rx_faulted);
                        if let Some(e) = event {
                            events.push(e);
                        }
                    }
                } else {
                    // Collision: indistinguishable from silence for the
                    // node; the count is already in the scratch.
                    node.receive(None);
                    collisions += 1;
                    if self.record_trace {
                        events.push(NodeEvent::Collision {
                            transmitting_neighbors: scratch.hit_count[v] as usize,
                        });
                    }
                }
            } else {
                node.receive(None);
                if self.record_trace {
                    events.push(NodeEvent::Silence);
                }
            }
        }

        if self.record_trace {
            self.trace.rounds.push(RoundRecord {
                round: self.round,
                events,
            });
        }
        let transmitter_count = self.scratch.transmitters.len();
        if let Some(sink) = self.metrics.as_deref_mut() {
            let (bits, max_message_bits) = message_bits(&self.tx_messages);
            sink.on_round(&RoundMetrics {
                round,
                transmitters: transmitter_count as u64,
                protocol_transmissions: self.tx_messages.len() as u64,
                deliveries,
                collisions,
                rx_faults,
                bits,
                max_message_bits,
                frontier: n as u64,
            });
        }
        transmitter_count
    }

    /// Executes a single round with the retained listener-centric reference
    /// engine, regardless of the configured [`Engine`].
    ///
    /// This is the original delivery algorithm, kept verbatim: it allocates
    /// fresh action and transmit-flag vectors every round and resolves each
    /// listener by scanning its own neighbour list. It exists as the
    /// executable specification that `tests/engine_equivalence.rs` replays
    /// workloads against; production paths never call it.
    pub fn step_round_reference(&mut self) -> usize {
        self.round += 1;
        let round = self.round;
        let n = self.graph.node_count();
        let faults = self.faults.as_ref();

        // Phase 1: every node decides. Fault semantics mirror the fast
        // engine exactly: an inert (crashed/asleep) node is never stepped,
        // and a jamming node's protocol is suspended while it occupies the
        // channel — both stand in as `Listen` in the action vector, with
        // side masks carrying their true roles.
        let mut inert: Vec<Option<FaultKind>> = vec![None; n];
        let mut jamming: Vec<bool> = vec![false; n];
        let mut actions: Vec<Action<N::Msg>> = Vec::with_capacity(n);
        for (v, node) in self.nodes.iter_mut().enumerate() {
            if let Some(f) = faults {
                if let Some(kind) = f.inert_kind(v, round) {
                    inert[v] = Some(kind);
                    actions.push(Action::Listen);
                    continue;
                }
                if f.is_jamming(v, round) {
                    jamming[v] = true;
                    actions.push(Action::Listen);
                    continue;
                }
            }
            actions.push(node.step());
        }
        let transmitting: Vec<bool> = actions
            .iter()
            .enumerate()
            .map(|(v, a)| a.is_transmit() || jamming[v])
            .collect();
        let transmitter_count = transmitting.iter().filter(|&&t| t).count();

        // Phase 2: delivery. A listener hears a message iff exactly one
        // neighbour transmitted.
        let rx_window = faults.map_or(&[][..], |f| f.rx_window(round));
        let mut events: Vec<NodeEvent<N::Msg>> =
            Vec::with_capacity(if self.record_trace { n } else { 0 });
        let (mut deliveries, mut collisions, mut rx_faults) = (0u64, 0u64, 0u64);
        for v in 0..n {
            if let Some(kind) = inert[v] {
                if self.record_trace {
                    events.push(NodeEvent::Faulted(kind));
                }
                continue;
            }
            if jamming[v] {
                if self.record_trace {
                    events.push(NodeEvent::Faulted(FaultKind::Jamming));
                }
                continue;
            }
            match &actions[v] {
                Action::Transmit(m) => {
                    if self.record_trace {
                        events.push(NodeEvent::Transmitted(m.clone()));
                    }
                }
                Action::Listen => {
                    let mut tx_neighbors = self
                        .graph
                        .neighbors(v)
                        .iter()
                        .copied()
                        .filter(|&w| transmitting[w]);
                    let first: Option<NodeId> = tx_neighbors.next();
                    let second: Option<NodeId> = tx_neighbors.next();
                    match (first, second) {
                        (Some(w), None) if jamming[w] => {
                            // The only transmitting neighbour is a jammer:
                            // busy channel, nothing decodable.
                            self.nodes[v].receive(None);
                            collisions += 1;
                            if self.record_trace {
                                events.push(NodeEvent::Collision {
                                    transmitting_neighbors: 1,
                                });
                            }
                        }
                        (Some(w), None) => {
                            let msg = actions[w].message().expect("w transmits");
                            let (decoded, rx_faulted, event) = deliver_with_rx_faults(
                                &mut self.nodes[v],
                                v,
                                w,
                                msg,
                                rx_window,
                                self.record_trace,
                            );
                            deliveries += u64::from(decoded);
                            rx_faults += u64::from(rx_faulted);
                            if let Some(e) = event {
                                events.push(e);
                            }
                        }
                        (Some(_), Some(_)) => {
                            // Collision: indistinguishable from silence for
                            // the node.
                            self.nodes[v].receive(None);
                            collisions += 1;
                            if self.record_trace {
                                let count = self
                                    .graph
                                    .neighbors(v)
                                    .iter()
                                    .filter(|&&w| transmitting[w])
                                    .count();
                                events.push(NodeEvent::Collision {
                                    transmitting_neighbors: count,
                                });
                            }
                        }
                        (None, _) => {
                            self.nodes[v].receive(None);
                            if self.record_trace {
                                events.push(NodeEvent::Silence);
                            }
                        }
                    }
                }
            }
        }

        if self.record_trace {
            self.trace.rounds.push(RoundRecord {
                round: self.round,
                events,
            });
        }
        if let Some(sink) = self.metrics.as_deref_mut() {
            // This engine keeps messages in the action vector; jammers and
            // inert nodes stand in as Listen, so filtering on the messages
            // yields exactly the protocol transmissions.
            let mut protocol_transmissions = 0u64;
            let mut bits = 0u64;
            let mut max_message_bits = 0u64;
            for m in actions.iter().filter_map(Action::message) {
                protocol_transmissions += 1;
                let b = m.bit_size() as u64;
                bits += b;
                max_message_bits = max_message_bits.max(b);
            }
            sink.on_round(&RoundMetrics {
                round,
                transmitters: transmitter_count as u64,
                protocol_transmissions,
                deliveries,
                collisions,
                rx_faults,
                bits,
                max_message_bits,
                frontier: n as u64,
            });
        }
        transmitter_count
    }

    /// Seeds the wake queue for [`Engine::EventDriven`] on its first round:
    /// every node is due in the next round (or at its late-wake round, if it
    /// starts asleep), and every jam interval registers a forced wake at its
    /// first in-range round so elision can never skip a channel-occupying
    /// jammer.
    fn init_event_state(&mut self) {
        let n = self.graph.node_count();
        let base = self.round;
        let faults = self.faults.as_ref();
        let mut st = EventState {
            next_wake: vec![0; n],
            enqueued_for: vec![0; n],
            due_stamp: vec![0; n],
            heap: BinaryHeap::with_capacity(n),
            fault_wakes: BinaryHeap::new(),
            due: Vec::with_capacity(n),
            due_next: Vec::new(),
            due_next_round: 0,
            touched: Vec::new(),
        };
        for v in 0..n {
            let wake = faults.map_or(1, |f| f.wake_round(v)).max(base + 1);
            st.next_wake[v] = wake;
            st.enqueued_for[v] = wake;
            st.heap.push(Reverse((wake, v)));
        }
        if let Some(f) = faults {
            for &(v, first, last) in f.jam_intervals() {
                let w = first.max(base + 1);
                if w <= last {
                    st.fault_wakes.push(Reverse((w, v)));
                }
            }
        }
        self.event = Some(st);
    }

    /// One round of the event-driven frontier engine: assemble the due list
    /// from the wake queues, drive only those nodes through the decide pass,
    /// mark the transmitters' neighbourhoods over the same generation-stamped
    /// scratch, and deliver observations — waking a dormant listener exactly
    /// when it decodes a message. With a trace recording, the observe pass
    /// falls back to one linear sweep so the per-node events come out
    /// byte-identical to the per-round engines (node driving is still
    /// frontier-only).
    fn step_round_event_driven(&mut self) -> usize {
        if self.event.is_none() {
            self.init_event_state();
        }
        self.round += 1;
        let round = self.round;
        let n = self.graph.node_count();
        let record_trace = self.record_trace;
        let scratch = &mut self.scratch;
        scratch.ensure_nodes(n);
        scratch.generation += 1;
        let generation = scratch.generation;
        let faults = self.faults.as_ref();
        let st = self.event.as_mut().expect("seeded above");

        // Due assembly: the next-round swap buffer, then the wake heap, then
        // forced jam wake-ups — deduplicated through `due_stamp` and
        // validated against `next_wake` (a heap entry whose round no longer
        // matches is stale and drops here).
        st.due.clear();
        st.touched.clear();
        if st.due_next_round == round {
            for i in 0..st.due_next.len() {
                let v = st.due_next[i];
                if st.next_wake[v] == round && st.due_stamp[v] != round {
                    st.due_stamp[v] = round;
                    st.due.push(v);
                }
            }
        }
        st.due_next.clear();
        while let Some(&Reverse((w, v))) = st.heap.peek() {
            if w > round {
                break;
            }
            st.heap.pop();
            if st.next_wake[v] == w && st.due_stamp[v] != round {
                st.due_stamp[v] = round;
                st.due.push(v);
            }
        }
        while let Some(&Reverse((w, v))) = st.fault_wakes.peek() {
            if w > round {
                break;
            }
            st.fault_wakes.pop();
            if st.due_stamp[v] != round {
                st.due_stamp[v] = round;
                st.due.push(v);
            }
        }
        // The mark pass's first-hit rule assumes transmitters are visited in
        // ascending node order, exactly like the per-round engines' decide
        // sweeps produce them.
        st.due.sort_unstable();
        // Frontier size for the metrics sink: the nodes this engine actually
        // drives this round (engine-specific by design — the per-round
        // engines report n here).
        let frontier = st.due.len() as u64;

        // Decide: only the due nodes act. A crashed node parks forever, an
        // asleep node sleeps until its wake round, a jammer occupies the
        // channel (and stays due while its interval lasts); everyone else
        // steps, and transmitters reschedule by their post-step hint.
        self.tx_messages.clear();
        scratch.transmitters.clear();
        for i in 0..st.due.len() {
            let v = st.due[i];
            if let Some(f) = faults {
                match f.inert_kind(v, round) {
                    Some(FaultKind::Crashed) => {
                        st.next_wake[v] = u64::MAX;
                        continue;
                    }
                    Some(_) => {
                        // Asleep: dormant (and deaf) until its wake round.
                        let wake = f.wake_round(v).max(round + 1);
                        st.schedule(v, round, wake);
                        continue;
                    }
                    None => {}
                }
                if f.is_jamming(v, round) {
                    scratch.tx_stamp[v] = generation;
                    scratch.tx_index[v] = JAMMER;
                    scratch.transmitters.push(v);
                    st.schedule(v, round, round + 1);
                    continue;
                }
            }
            match self.nodes[v].step() {
                Action::Transmit(m) => {
                    scratch.tx_stamp[v] = generation;
                    scratch.tx_index[v] = self.tx_messages.len() as u32;
                    scratch.transmitters.push(v);
                    self.tx_messages.push(m);
                    st.schedule(v, round, wake_after(round, self.nodes[v].wake_hint()));
                }
                Action::Listen => {} // rescheduled in observe, after receive
            }
        }

        // Mark: identical to the fast engine, except that with tracing off
        // the first hit on a node outside the due list records it as a
        // wake-by-reception candidate.
        for ti in 0..scratch.transmitters.len() {
            let t = scratch.transmitters[ti];
            for &w in self.graph.neighbors(t) {
                if scratch.stamp[w] == generation {
                    scratch.hit_count[w] += 1;
                } else {
                    scratch.stamp[w] = generation;
                    scratch.hit_count[w] = 1;
                    scratch.last_sender[w] = t;
                    if !record_trace && st.due_stamp[w] != round {
                        st.touched.push(w);
                    }
                }
            }
        }

        // Observe.
        let rx_window = faults.map_or(&[][..], |f| f.rx_window(round));
        let (mut deliveries, mut collisions, mut rx_faults) = (0u64, 0u64, 0u64);
        if record_trace {
            // One linear sweep, byte-identical events to the per-round
            // engines. A dormant listener's `receive(None)` is elided — a
            // no-op under the wake-hint contract — but its Silence/Collision
            // events are still materialised.
            let mut events: Vec<NodeEvent<N::Msg>> = Vec::with_capacity(n);
            for v in 0..n {
                if let Some(f) = faults {
                    if let Some(kind) = f.inert_kind(v, round) {
                        events.push(NodeEvent::Faulted(kind));
                        continue;
                    }
                }
                if scratch.tx_stamp[v] == generation {
                    if scratch.tx_index[v] == JAMMER {
                        events.push(NodeEvent::Faulted(FaultKind::Jamming));
                    } else {
                        let m = &self.tx_messages[scratch.tx_index[v] as usize];
                        events.push(NodeEvent::Transmitted(m.clone()));
                    }
                    continue;
                }
                let is_due = st.due_stamp[v] == round;
                if scratch.stamp[v] == generation {
                    if scratch.hit_count[v] == 1 {
                        let w = scratch.last_sender[v];
                        if scratch.tx_index[w] == JAMMER {
                            if is_due {
                                self.nodes[v].receive(None);
                                st.schedule(v, round, wake_after(round, self.nodes[v].wake_hint()));
                            }
                            collisions += 1;
                            events.push(NodeEvent::Collision {
                                transmitting_neighbors: 1,
                            });
                        } else {
                            // Tripwire (debug builds): a non-due listener is
                            // inside a promised Listen-only span, so the
                            // `step` the engine elided this round must be a
                            // Listen no-op — a Transmit means `wake_hint`
                            // overpromised and elision suppressed a real
                            // transmission.
                            debug_assert!(
                                is_due || !self.nodes[v].step().is_transmit(),
                                "wake-hint overpromise: node {v} would transmit in round {round} \
                                 inside its elided span"
                            );
                            let msg = &self.tx_messages[scratch.tx_index[w] as usize];
                            let (decoded, rx_faulted, event) = deliver_with_rx_faults(
                                &mut self.nodes[v],
                                v,
                                w,
                                msg,
                                rx_window,
                                true,
                            );
                            deliveries += u64::from(decoded);
                            rx_faults += u64::from(rx_faulted);
                            events.push(event.expect("recording"));
                            if decoded || is_due {
                                st.schedule(v, round, wake_after(round, self.nodes[v].wake_hint()));
                            }
                        }
                    } else {
                        if is_due {
                            self.nodes[v].receive(None);
                            st.schedule(v, round, wake_after(round, self.nodes[v].wake_hint()));
                        }
                        collisions += 1;
                        events.push(NodeEvent::Collision {
                            transmitting_neighbors: scratch.hit_count[v] as usize,
                        });
                    }
                } else {
                    if is_due {
                        self.nodes[v].receive(None);
                        st.schedule(v, round, wake_after(round, self.nodes[v].wake_hint()));
                    }
                    events.push(NodeEvent::Silence);
                }
            }
            self.trace.rounds.push(RoundRecord { round, events });
        } else {
            // Tracing off: the due listeners plus the touched set cover
            // every node whose state can change this round. Due listeners
            // observe their outcome and reschedule by their post-receive
            // hint; a touched (dormant) node is woken only by an actual
            // decoded delivery.
            for i in 0..st.due.len() {
                let v = st.due[i];
                if let Some(f) = faults {
                    if f.inert_kind(v, round).is_some() {
                        continue;
                    }
                }
                if scratch.tx_stamp[v] == generation {
                    continue; // transmitters and jammers observe nothing
                }
                if scratch.stamp[v] == generation
                    && scratch.hit_count[v] == 1
                    && scratch.tx_index[scratch.last_sender[v]] != JAMMER
                {
                    let w = scratch.last_sender[v];
                    let msg = &self.tx_messages[scratch.tx_index[w] as usize];
                    let (decoded, rx_faulted, _) =
                        deliver_with_rx_faults(&mut self.nodes[v], v, w, msg, rx_window, false);
                    deliveries += u64::from(decoded);
                    rx_faults += u64::from(rx_faulted);
                } else {
                    // A marked listener that decoded nothing observed a
                    // collision (several transmitters, or a sole jammer) —
                    // the same condition the recorded path traces.
                    collisions += u64::from(scratch.stamp[v] == generation);
                    self.nodes[v].receive(None);
                }
                st.schedule(v, round, wake_after(round, self.nodes[v].wake_hint()));
            }
            for i in 0..st.touched.len() {
                let v = st.touched[i];
                if let Some(f) = faults {
                    if f.inert_kind(v, round).is_some() {
                        continue;
                    }
                }
                if scratch.tx_stamp[v] == generation {
                    continue;
                }
                if scratch.hit_count[v] != 1 {
                    collisions += 1;
                    continue; // collisions deliver None: a no-op while dormant
                }
                let w = scratch.last_sender[v];
                if scratch.tx_index[w] == JAMMER {
                    collisions += 1;
                    continue;
                }
                // Tripwire (debug builds): touched nodes are dormant by
                // construction, so the elided `step` must be a Listen
                // no-op (see the recorded path's twin assertion).
                debug_assert!(
                    !self.nodes[v].step().is_transmit(),
                    "wake-hint overpromise: node {v} would transmit in round {round} \
                     inside its elided span"
                );
                let msg = &self.tx_messages[scratch.tx_index[w] as usize];
                let (decoded, rx_faulted, _) =
                    deliver_with_rx_faults(&mut self.nodes[v], v, w, msg, rx_window, false);
                deliveries += u64::from(decoded);
                rx_faults += u64::from(rx_faulted);
                if decoded {
                    st.schedule(v, round, wake_after(round, self.nodes[v].wake_hint()));
                }
            }
        }
        let transmitter_count = self.scratch.transmitters.len();
        if let Some(sink) = self.metrics.as_deref_mut() {
            let (bits, max_message_bits) = message_bits(&self.tx_messages);
            sink.on_round(&RoundMetrics {
                round,
                transmitters: transmitter_count as u64,
                protocol_transmissions: self.tx_messages.len() as u64,
                deliveries,
                collisions,
                rx_faults,
                bits,
                max_message_bits,
                frontier,
            });
        }
        transmitter_count
    }

    /// With tracing off under [`Engine::EventDriven`], the number of
    /// upcoming rounds that are provably silent: no protocol wake, pending
    /// next-round entry, or forced jam wake falls inside them, so no node
    /// can transmit and no node state can change (dormant nodes are frozen
    /// by the wake-hint contract). Returns 0 under the other engines and
    /// whenever a trace is recording, which needs every round materialised.
    fn provably_quiet_rounds(&mut self) -> u64 {
        if self.engine != Engine::EventDriven || self.record_trace {
            return 0;
        }
        let round = self.round;
        let Some(st) = self.event.as_mut() else {
            return 0;
        };
        if st.due_next_round == round + 1 && !st.due_next.is_empty() {
            return 0;
        }
        let mut next = u64::MAX;
        while let Some(&Reverse((w, v))) = st.heap.peek() {
            if st.next_wake[v] == w {
                next = w;
                break;
            }
            // Stale entry: drop it, and clear the dedup stamp it may still
            // hold so a future schedule targeting the same round is not
            // suppressed (the physical entry is gone).
            if st.enqueued_for[v] == w {
                st.enqueued_for[v] = 0;
            }
            st.heap.pop();
        }
        if let Some(&Reverse((w, _))) = st.fault_wakes.peek() {
            next = next.min(w);
        }
        next.saturating_sub(round + 1)
    }

    /// Runs until the stop condition is met or `predicate` (evaluated after
    /// each round, with harness-level omniscience) returns true.
    ///
    /// Under [`Engine::EventDriven`] with tracing off, provably quiet spans
    /// are elided: the round counter and the quiet-streak arithmetic advance
    /// exactly as if the silent rounds had run, but the predicate is not
    /// re-evaluated inside a span — it already returned false after the last
    /// executed round and no node state changes during the span, so any
    /// predicate that is a function of node states (as harness predicates
    /// are) cannot flip. A predicate that reads the round counter itself
    /// would observe the jump; pair such predicates with the per-round
    /// engines or a recorded trace.
    pub fn run_until<P>(&mut self, stop: StopCondition, mut predicate: P) -> RunOutcome
    where
        P: FnMut(&Self) -> bool,
    {
        let (cap, quiet_needed) = match stop {
            StopCondition::AfterRounds(k) => (k, None),
            StopCondition::QuietOrCap(k) => (k, Some(1)),
            StopCondition::QuietFor { quiet, cap } => (cap, Some(quiet)),
        };
        let start = self.round;
        let mut quiet_streak = 0u64;
        while self.round - start < cap {
            let transmitters = self.step_round();
            if predicate(self) {
                return RunOutcome {
                    rounds_executed: self.round - start,
                    predicate_satisfied: true,
                    went_quiet: false,
                };
            }
            if transmitters == 0 {
                quiet_streak += 1;
            } else {
                quiet_streak = 0;
            }
            if let Some(needed) = quiet_needed {
                if quiet_streak >= needed {
                    return RunOutcome {
                        rounds_executed: self.round - start,
                        predicate_satisfied: false,
                        went_quiet: true,
                    };
                }
            }
            // Silent-span elision (event-driven engine, tracing off): jump
            // the clock over rounds in which provably nothing happens,
            // clamped so the quiet threshold and the cap trigger at exactly
            // the same round they would if every round ran.
            let mut span = self.provably_quiet_rounds();
            if span > 0 {
                span = span.min(cap - (self.round - start));
                if let Some(needed) = quiet_needed {
                    span = span.min(needed - quiet_streak);
                }
                self.round += span;
                quiet_streak += span;
                if span > 0 {
                    if let Some(sink) = self.metrics.as_deref_mut() {
                        sink.on_elided_span(self.round - span + 1, span);
                    }
                }
                if let Some(needed) = quiet_needed {
                    if quiet_streak >= needed {
                        return RunOutcome {
                            rounds_executed: self.round - start,
                            predicate_satisfied: false,
                            went_quiet: true,
                        };
                    }
                }
            }
        }
        RunOutcome {
            rounds_executed: self.round - start,
            predicate_satisfied: false,
            went_quiet: false,
        }
    }

    /// Runs exactly `rounds` rounds (unless a predicate is wanted, use
    /// [`run_until`](Self::run_until)).
    pub fn run_rounds(&mut self, rounds: u64) -> RunOutcome {
        self.run_until(StopCondition::AfterRounds(rounds), |_| false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rn_graph::generators;

    /// Test protocol: node 0 ("source") transmits `42` in its first round and
    /// then stays silent; everyone else listens forever and remembers what it
    /// heard.
    struct OneShot {
        is_source: bool,
        sent: bool,
        heard: Option<u64>,
        listen_outcomes: Vec<Option<u64>>,
    }

    impl OneShot {
        fn new(is_source: bool) -> Self {
            OneShot {
                is_source,
                sent: false,
                heard: None,
                listen_outcomes: Vec::new(),
            }
        }
    }

    impl RadioNode for OneShot {
        type Msg = u64;
        fn step(&mut self) -> Action<u64> {
            if self.is_source && !self.sent {
                self.sent = true;
                Action::Transmit(42)
            } else {
                Action::Listen
            }
        }
        fn receive(&mut self, heard: Option<&u64>) {
            let h = heard.copied();
            self.listen_outcomes.push(h);
            if self.heard.is_none() {
                self.heard = h;
            }
        }
    }

    /// Protocol in which the given set of nodes all transmit in round 1.
    struct Simultaneous {
        transmit_first: bool,
        done: bool,
        heard: Option<u64>,
        listened_rounds: usize,
    }

    impl RadioNode for Simultaneous {
        type Msg = u64;
        fn step(&mut self) -> Action<u64> {
            if self.transmit_first && !self.done {
                self.done = true;
                Action::Transmit(7)
            } else {
                Action::Listen
            }
        }
        fn receive(&mut self, heard: Option<&u64>) {
            self.listened_rounds += 1;
            if self.heard.is_none() {
                self.heard = heard.copied();
            }
        }
    }

    fn one_shot_sim(g: Graph) -> Simulator<OneShot> {
        let nodes: Vec<OneShot> = (0..g.node_count()).map(|v| OneShot::new(v == 0)).collect();
        Simulator::new(g, nodes)
    }

    #[test]
    #[should_panic(expected = "one protocol instance per graph node")]
    fn mismatched_node_count_panics() {
        let g = generators::path(3);
        let _ = Simulator::new(g, vec![OneShot::new(true)]);
    }

    #[test]
    fn single_transmitter_is_heard_by_all_neighbors() {
        let g = generators::star(5); // 0 is the centre
        let mut sim = one_shot_sim(g);
        sim.step_round();
        for v in 1..5 {
            assert_eq!(sim.nodes()[v].heard, Some(42), "leaf {v}");
        }
        // Source transmitted, so it observed nothing (receive never called).
        assert!(sim.nodes()[0].listen_outcomes.is_empty());
    }

    #[test]
    fn non_neighbors_hear_nothing() {
        let g = generators::path(3); // 0 - 1 - 2
        let mut sim = one_shot_sim(g);
        sim.step_round();
        assert_eq!(sim.nodes()[1].heard, Some(42));
        assert_eq!(sim.nodes()[2].heard, None);
    }

    #[test]
    fn collision_delivers_nothing() {
        // Path 0 - 1 - 2: nodes 0 and 2 transmit simultaneously; node 1 must
        // hear nothing (collision without detection).
        let g = generators::path(3);
        let nodes = vec![
            Simultaneous {
                transmit_first: true,
                done: false,
                heard: None,
                listened_rounds: 0,
            },
            Simultaneous {
                transmit_first: false,
                done: false,
                heard: None,
                listened_rounds: 0,
            },
            Simultaneous {
                transmit_first: true,
                done: false,
                heard: None,
                listened_rounds: 0,
            },
        ];
        let mut sim = Simulator::new(g, nodes);
        sim.step_round();
        assert_eq!(sim.nodes()[1].heard, None);
        assert_eq!(sim.nodes()[1].listened_rounds, 1);
        // Trace records a collision with 2 transmitting neighbours.
        assert_eq!(sim.trace().rounds[0].collision_nodes(), vec![1]);
        match &sim.trace().rounds[0].events[1] {
            NodeEvent::Collision {
                transmitting_neighbors,
            } => {
                assert_eq!(*transmitting_neighbors, 2);
            }
            other => panic!("expected collision, got {other:?}"),
        }
    }

    #[test]
    fn collision_indistinguishable_from_silence_at_the_node() {
        // From the node's perspective, a collision round and a silent round
        // deliver exactly the same observation (None).
        let g = generators::path(3);
        let nodes = vec![
            Simultaneous {
                transmit_first: true,
                done: false,
                heard: None,
                listened_rounds: 0,
            },
            Simultaneous {
                transmit_first: false,
                done: false,
                heard: None,
                listened_rounds: 0,
            },
            Simultaneous {
                transmit_first: true,
                done: false,
                heard: None,
                listened_rounds: 0,
            },
        ];
        let mut sim = Simulator::new(g, nodes);
        sim.step_round(); // collision at node 1
        sim.step_round(); // silence everywhere
                          // Both rounds look identical to node 1 (None twice).
        assert_eq!(sim.nodes()[1].listened_rounds, 2);
        assert_eq!(sim.nodes()[1].heard, None);
    }

    #[test]
    fn trace_records_rounds_and_transmitters() {
        let g = generators::path(4);
        let mut sim = one_shot_sim(g);
        sim.run_rounds(3);
        assert_eq!(sim.trace().len(), 3);
        assert_eq!(sim.trace().rounds[0].transmitters(), vec![0]);
        assert!(sim.trace().rounds[1].transmitters().is_empty());
        assert_eq!(sim.trace().transmit_rounds(0), vec![1]);
        assert_eq!(sim.trace().first_receive_round(1), Some(1));
    }

    #[test]
    fn run_until_predicate_stops_early() {
        let g = generators::star(6);
        let mut sim = one_shot_sim(g);
        let outcome = sim.run_until(StopCondition::AfterRounds(100), |s| {
            s.nodes().iter().skip(1).all(|n| n.heard.is_some())
        });
        assert!(outcome.predicate_satisfied);
        assert_eq!(outcome.rounds_executed, 1);
        assert_eq!(sim.current_round(), 1);
    }

    #[test]
    fn quiet_detection_stops_when_no_one_transmits() {
        let g = generators::path(3);
        let mut sim = one_shot_sim(g);
        let outcome = sim.run_until(StopCondition::QuietOrCap(50), |_| false);
        // Round 1: source transmits; round 2: silence -> quiet.
        assert!(outcome.went_quiet);
        assert_eq!(outcome.rounds_executed, 2);
    }

    #[test]
    fn after_rounds_cap_reached() {
        let g = generators::path(3);
        let mut sim = one_shot_sim(g);
        let outcome = sim.run_rounds(5);
        assert_eq!(outcome.rounds_executed, 5);
        assert!(!outcome.predicate_satisfied);
        assert!(!outcome.went_quiet);
    }

    #[test]
    fn without_trace_records_nothing() {
        let g = generators::star(4);
        let nodes: Vec<OneShot> = (0..4).map(|v| OneShot::new(v == 0)).collect();
        let mut sim = Simulator::new(g, nodes).without_trace();
        sim.run_rounds(3);
        assert!(sim.trace().is_empty());
        // Delivery still works without the trace.
        assert_eq!(sim.nodes()[1].heard, Some(42));
    }

    #[test]
    fn into_parts_returns_trace_and_nodes() {
        let g = generators::path(2);
        let mut sim = one_shot_sim(g);
        sim.run_rounds(2);
        let (trace, nodes) = sim.into_parts();
        assert_eq!(trace.len(), 2);
        assert_eq!(nodes.len(), 2);
        assert_eq!(nodes[1].heard, Some(42));
    }

    #[test]
    fn engines_agree_on_collision_heavy_round() {
        // Star: all 4 leaves transmit at the centre simultaneously.
        let g = generators::star(5);
        let make_nodes = || {
            (0..5)
                .map(|v| Simultaneous {
                    transmit_first: v != 0,
                    done: false,
                    heard: None,
                    listened_rounds: 0,
                })
                .collect::<Vec<_>>()
        };
        let mut fast = Simulator::new(g.clone(), make_nodes());
        let mut reference = Simulator::new(g, make_nodes()).with_engine(Engine::ListenerCentric);
        let tx_fast = fast.step_round();
        let tx_ref = reference.step_round();
        assert_eq!(tx_fast, tx_ref);
        assert_eq!(fast.trace().rounds, reference.trace().rounds);
        match &fast.trace().rounds[0].events[0] {
            NodeEvent::Collision {
                transmitting_neighbors,
            } => assert_eq!(*transmitting_neighbors, 4),
            other => panic!("expected collision at the centre, got {other:?}"),
        }
    }

    #[test]
    fn recycled_scratch_produces_identical_runs() {
        // Run on a larger graph first, then recycle the (bigger, stale)
        // scratch into a smaller simulation: generation stamping must keep
        // the stale entries invisible.
        let big = generators::star(9);
        let mut first = one_shot_sim(big);
        first.run_rounds(4);
        let scratch = first.take_scratch();
        assert!(scratch.capacity() >= 9);

        let small = generators::path(3);
        let nodes: Vec<OneShot> = (0..3).map(|v| OneShot::new(v == 0)).collect();
        let mut recycled = Simulator::new(small.clone(), nodes).with_scratch(scratch);
        recycled.run_rounds(2);

        let mut fresh = one_shot_sim(small);
        fresh.run_rounds(2);
        assert_eq!(recycled.trace().rounds, fresh.trace().rounds);
        assert_eq!(recycled.nodes()[1].heard, fresh.nodes()[1].heard);
    }

    #[test]
    fn take_scratch_leaves_a_usable_simulator() {
        let g = generators::path(4);
        let mut sim = one_shot_sim(g);
        sim.step_round();
        let _scratch = sim.take_scratch();
        // The replacement scratch regrows on demand.
        sim.step_round();
        assert_eq!(sim.current_round(), 2);
        assert_eq!(sim.nodes()[1].heard, Some(42));
    }

    #[test]
    fn none_plan_is_byte_identical_to_no_plan() {
        let g = generators::path(5);
        let mut plain = one_shot_sim(g.clone());
        plain.run_rounds(4);
        let nodes: Vec<OneShot> = (0..5).map(|v| OneShot::new(v == 0)).collect();
        let mut with_none = Simulator::new(g, nodes).with_faults(&FaultPlan::none());
        assert!(with_none.faults.is_none(), "empty plan must compile away");
        with_none.run_rounds(4);
        assert_eq!(plain.trace().rounds, with_none.trace().rounds);
        for (a, b) in plain.nodes().iter().zip(with_none.nodes()) {
            assert_eq!(a.listen_outcomes, b.listen_outcomes);
        }
    }

    #[test]
    fn crashed_source_never_transmits_and_trace_marks_it() {
        let g = generators::star(4);
        let nodes: Vec<OneShot> = (0..4).map(|v| OneShot::new(v == 0)).collect();
        let plan = FaultPlan::none().crash(0, 1);
        let mut sim = Simulator::new(g, nodes).with_faults(&plan);
        sim.run_rounds(3);
        for v in 1..4 {
            assert_eq!(sim.nodes()[v].heard, None, "leaf {v} heard a dead source");
        }
        assert_eq!(sim.trace().fault_rounds(0), vec![1, 2, 3]);
        assert!(matches!(
            sim.trace().rounds[0].events[0],
            NodeEvent::Faulted(FaultKind::Crashed)
        ));
        // The dead node's step() was never called, so its transmit flag is
        // still pending.
        assert!(!sim.nodes()[0].sent);
    }

    #[test]
    fn late_wake_defers_the_first_transmission() {
        let g = generators::path(3);
        let nodes: Vec<OneShot> = (0..3).map(|v| OneShot::new(v == 0)).collect();
        let plan = FaultPlan::none().late_wake(0, 3);
        let mut sim = Simulator::new(g, nodes).with_faults(&plan);
        sim.run_rounds(4);
        assert_eq!(sim.trace().fault_rounds(0), vec![1, 2]);
        assert_eq!(sim.trace().transmit_rounds(0), vec![3]);
        assert_eq!(sim.trace().first_receive_round(1), Some(3));
    }

    #[test]
    fn jamming_neighbour_forces_collisions_and_counts_as_transmitter() {
        // Path 0 - 1 - 2: node 2 jams round 1, so node 1 sees a collision
        // (source + jammer) and node 0's broadcast is lost on it.
        let g = generators::path(3);
        let nodes: Vec<OneShot> = (0..3).map(|v| OneShot::new(v == 0)).collect();
        let plan = FaultPlan::none().jam(2, 1, 1);
        let mut sim = Simulator::new(g, nodes).with_faults(&plan);
        let transmitters = sim.step_round();
        assert_eq!(transmitters, 2, "source + jammer both occupy the channel");
        assert_eq!(sim.nodes()[1].heard, None);
        assert!(matches!(
            sim.trace().rounds[0].events[1],
            NodeEvent::Collision {
                transmitting_neighbors: 2
            }
        ));
        assert!(matches!(
            sim.trace().rounds[0].events[2],
            NodeEvent::Faulted(FaultKind::Jamming)
        ));
    }

    #[test]
    fn lone_jammer_reads_as_undecodable_collision() {
        let g = generators::path(2);
        let nodes: Vec<OneShot> = (0..2).map(|_| OneShot::new(false)).collect();
        let plan = FaultPlan::none().jam(0, 1, 1);
        let mut sim = Simulator::new(g, nodes).with_faults(&plan);
        sim.step_round();
        assert_eq!(sim.nodes()[1].heard, None);
        assert!(matches!(
            sim.trace().rounds[0].events[1],
            NodeEvent::Collision {
                transmitting_neighbors: 1
            }
        ));
    }

    #[test]
    fn drop_and_corrupt_rewrite_successful_receptions() {
        // Star with centre 0 transmitting in round 1: leaf 1 drops it, leaf 2
        // decodes a garbled copy (u64 corruption flips the low bit), leaf 3
        // hears it intact.
        let g = generators::star(4);
        let nodes: Vec<OneShot> = (0..4).map(|v| OneShot::new(v == 0)).collect();
        let plan = FaultPlan::none().drop_message(1, 1).corrupt(2, 1);
        let mut sim = Simulator::new(g, nodes).with_faults(&plan);
        sim.step_round();
        assert_eq!(sim.nodes()[1].heard, None);
        assert_eq!(sim.nodes()[2].heard, Some(43));
        assert_eq!(sim.nodes()[3].heard, Some(42));
        assert!(matches!(
            sim.trace().rounds[0].events[1],
            NodeEvent::Faulted(FaultKind::Dropped)
        ));
        assert!(matches!(
            sim.trace().rounds[0].events[2],
            NodeEvent::Heard {
                from: 0,
                message: 43
            }
        ));
    }

    #[test]
    fn rx_faults_are_noops_without_a_reception() {
        // Node 2 on a path never hears the round-1 broadcast (it is two hops
        // away), so dropping its round-1 reception changes nothing.
        let g = generators::path(3);
        let nodes: Vec<OneShot> = (0..3).map(|v| OneShot::new(v == 0)).collect();
        let plan = FaultPlan::none().drop_message(2, 1);
        let mut sim = Simulator::new(g, nodes).with_faults(&plan);
        sim.step_round();
        assert!(matches!(
            sim.trace().rounds[0].events[2],
            NodeEvent::Silence
        ));
    }

    #[test]
    fn engines_agree_under_every_fault_kind() {
        let g = generators::grid(3, 4);
        let plan = FaultPlan::none()
            .crash(5, 2)
            .jam(7, 1, 3)
            .late_wake(0, 2)
            .drop_message(2, 2)
            .corrupt(6, 3);
        let make = |engine: Engine| {
            let nodes: Vec<OneShot> = (0..12).map(|v| OneShot::new(v == 1)).collect();
            Simulator::new(g.clone(), nodes)
                .with_engine(engine)
                .with_faults(&plan)
        };
        let mut fast = make(Engine::TransmitterCentric);
        let mut reference = make(Engine::ListenerCentric);
        let mut event = make(Engine::EventDriven);
        for _ in 0..6 {
            let tx = fast.step_round();
            assert_eq!(tx, reference.step_round());
            assert_eq!(tx, event.step_round());
        }
        assert_eq!(fast.trace().rounds, reference.trace().rounds);
        assert_eq!(fast.trace().rounds, event.trace().rounds);
        for (a, b) in fast.nodes().iter().zip(reference.nodes()) {
            assert_eq!(a.listen_outcomes, b.listen_outcomes);
        }
        for (a, b) in fast.nodes().iter().zip(event.nodes()) {
            assert_eq!(a.listen_outcomes, b.listen_outcomes);
        }
    }

    /// A protocol with a real dormancy hint: the source transmits once, then
    /// everyone is parked until woken by a decodable reception. `step` is
    /// `Listen` and `receive(None)` is a no-op for parked nodes, so the
    /// wake-hint frozen-state contract holds exactly.
    struct Pulse {
        is_source: bool,
        sent: bool,
        heard: Vec<u64>,
    }

    impl Pulse {
        fn new(is_source: bool) -> Self {
            Pulse {
                is_source,
                sent: false,
                heard: Vec::new(),
            }
        }
    }

    impl RadioNode for Pulse {
        type Msg = u64;
        fn step(&mut self) -> Action<u64> {
            if self.is_source && !self.sent {
                self.sent = true;
                Action::Transmit(42)
            } else {
                Action::Listen
            }
        }
        fn receive(&mut self, heard: Option<&u64>) {
            if let Some(m) = heard {
                self.heard.push(*m);
            }
        }
        fn wake_hint(&self) -> u64 {
            if self.is_source && !self.sent {
                0
            } else {
                u64::MAX
            }
        }
    }

    fn pulse_sim(g: Graph, engine: Engine) -> Simulator<Pulse> {
        let nodes: Vec<Pulse> = (0..g.node_count()).map(|v| Pulse::new(v == 0)).collect();
        Simulator::new(g, nodes).with_engine(engine).without_trace()
    }

    #[test]
    fn elision_hits_quiet_for_threshold_exactly() {
        // Round 1: source transmits, then everyone parks. QuietFor{5,100}
        // must end at round 6 (five silent rounds after the transmission) on
        // every engine, elided or not.
        for engine in [
            Engine::TransmitterCentric,
            Engine::ListenerCentric,
            Engine::EventDriven,
        ] {
            let mut sim = pulse_sim(generators::path(6), engine);
            let outcome = sim.run_until(StopCondition::QuietFor { quiet: 5, cap: 100 }, |_| false);
            assert!(outcome.went_quiet, "{engine:?}");
            assert_eq!(outcome.rounds_executed, 6, "{engine:?}");
            assert_eq!(sim.current_round(), 6, "{engine:?}");
        }
    }

    #[test]
    fn elision_respects_the_cap_exactly() {
        for engine in [
            Engine::TransmitterCentric,
            Engine::ListenerCentric,
            Engine::EventDriven,
        ] {
            let mut sim = pulse_sim(generators::path(6), engine);
            let outcome = sim.run_until(StopCondition::QuietFor { quiet: 10, cap: 4 }, |_| false);
            assert!(!outcome.went_quiet, "{engine:?}");
            assert_eq!(outcome.rounds_executed, 4, "{engine:?}");
            assert_eq!(sim.current_round(), 4, "{engine:?}");
        }
    }

    #[test]
    fn elision_counts_after_rounds_exactly() {
        for engine in [
            Engine::TransmitterCentric,
            Engine::ListenerCentric,
            Engine::EventDriven,
        ] {
            let mut sim = pulse_sim(generators::path(6), engine);
            let outcome = sim.run_rounds(50);
            assert_eq!(outcome.rounds_executed, 50, "{engine:?}");
            assert_eq!(sim.current_round(), 50, "{engine:?}");
            assert_eq!(sim.nodes()[1].heard, vec![42], "{engine:?}");
        }
    }

    #[test]
    fn elision_disabled_with_tracing_on() {
        let nodes: Vec<Pulse> = (0..4).map(|v| Pulse::new(v == 0)).collect();
        let mut event = Simulator::new(generators::path(4), nodes).with_engine(Engine::EventDriven);
        let nodes: Vec<Pulse> = (0..4).map(|v| Pulse::new(v == 0)).collect();
        let mut fast = Simulator::new(generators::path(4), nodes);
        let a = event.run_until(StopCondition::QuietFor { quiet: 3, cap: 40 }, |_| false);
        let b = fast.run_until(StopCondition::QuietFor { quiet: 3, cap: 40 }, |_| false);
        assert_eq!(a, b);
        assert_eq!(event.trace().rounds, fast.trace().rounds);
        assert_eq!(event.trace().len() as u64, a.rounds_executed);
    }

    #[test]
    fn parked_node_wakes_on_reception_and_reparks() {
        // Pulse on a path relays nothing, so only node 1 hears the source;
        // the interesting part is that node 1 was parked (hint MAX after
        // round 1's step) yet still receives in round 1, and that a second
        // run segment keeps the accumulated wake state consistent.
        let mut sim = pulse_sim(generators::path(5), Engine::EventDriven);
        sim.run_rounds(3);
        assert_eq!(sim.nodes()[1].heard, vec![42]);
        assert!(sim.nodes()[2].heard.is_empty());
        sim.run_rounds(100);
        assert_eq!(sim.current_round(), 103);
        assert_eq!(sim.nodes()[1].heard, vec![42]);
    }

    #[test]
    fn event_engine_elides_past_late_jam_and_wake_faults() {
        // Everyone parks immediately (no source), but a jam interval at
        // rounds 10..=11 must still occupy the channel and reset the quiet
        // streak — elision may not jump over it.
        let plan = FaultPlan::none().jam(1, 10, 2);
        let make = |engine: Engine| {
            let nodes: Vec<Pulse> = (0..3).map(|_| Pulse::new(false)).collect();
            Simulator::new(generators::path(3), nodes)
                .with_engine(engine)
                .with_faults(&plan)
                .without_trace()
        };
        for engine in [
            Engine::TransmitterCentric,
            Engine::ListenerCentric,
            Engine::EventDriven,
        ] {
            let mut sim = make(engine);
            let outcome = sim.run_until(
                StopCondition::QuietFor {
                    quiet: 30,
                    cap: 1000,
                },
                |_| false,
            );
            assert!(outcome.went_quiet, "{engine:?}");
            // Rounds 10 and 11 jam; 30 quiet rounds after that ends at 41.
            assert_eq!(outcome.rounds_executed, 41, "{engine:?}");
        }
    }

    #[test]
    #[should_panic(expected = "targets node 9")]
    fn with_faults_rejects_out_of_range_nodes() {
        let g = generators::path(3);
        let nodes: Vec<OneShot> = (0..3).map(|v| OneShot::new(v == 0)).collect();
        let _ = Simulator::new(g, nodes).with_faults(&FaultPlan::none().crash(9, 1));
    }

    #[test]
    fn multiple_sequential_runs_accumulate_rounds() {
        let g = generators::path(3);
        let mut sim = one_shot_sim(g);
        sim.run_rounds(2);
        sim.run_rounds(3);
        assert_eq!(sim.current_round(), 5);
        assert_eq!(sim.trace().len(), 5);
        assert_eq!(sim.trace().rounds.last().unwrap().round, 5);
    }
}
