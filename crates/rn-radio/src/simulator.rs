//! The synchronous round-by-round simulator.
//!
//! [`Simulator`] owns the graph and one [`RadioNode`] per graph node, and
//! executes the radio model of §1.1 of the paper faithfully:
//!
//! * every round, every node chooses to transmit or listen
//!   ([`RadioNode::step`]);
//! * a listening node receives a message iff exactly one of its neighbours
//!   transmitted; otherwise it observes nothing (and cannot distinguish
//!   silence from collision);
//! * transmitting nodes observe nothing.
//!
//! The simulator records a full [`Trace`] for the harness and supports
//! flexible stop conditions so experiments can run "until all nodes are
//! informed", "for exactly k rounds", or "until the trace goes quiet".
//!
//! # Engine design: transmitter-centric delivery over CSR rows
//!
//! The paper's protocols produce long executions in which most rounds have
//! very few transmitters (often one, frequently zero in quiet tails), so the
//! default engine resolves delivery from the transmitters outward rather
//! than by scanning every listener's neighbourhood:
//!
//! 1. **Decide** — every node takes its [`RadioNode::step`]; transmitters
//!    are collected in the same pass (no separate counting sweep), each
//!    recorded sparsely as a generation mark plus its message moved into a
//!    reused buffer. Listening nodes write **nothing**, so the pass's memory
//!    traffic is proportional to the number of transmitters, not to `n`.
//! 2. **Mark** — for each transmitter `t`, walk its contiguous CSR neighbour
//!    slice ([`Graph::neighbors`]) and bump the neighbour's
//!    `(hit_count, last_sender)` entry in the [`RoundScratch`]. This is the
//!    only part of the round that touches the adjacency structure, and it
//!    costs O(Σ deg(t) over transmitters) — not O(Σ deg(v) over listeners).
//! 3. **Observe** — one linear pass over the nodes delivers observations:
//!    a listener with `hit_count == 1` receives the unique sender's message
//!    *by reference* (no clone; the trace, if recording, makes the only
//!    copy), any other listener observes `None`, and the collision trace
//!    event reads its neighbour count straight out of `hit_count` — the
//!    delivery pass already computed it.
//!
//! Steady-state rounds perform **zero heap allocations** with tracing off:
//! the transmitted-message buffer, the transmitter list and the per-listener
//! arrays all live in the [`RoundScratch`] / simulator and are reused every
//! round, and clearing is free because scratch entries are validated by a
//! per-round generation stamp instead of being zeroed (see
//! [`crate::scratch`]).
//!
//! Invariants the engine relies on:
//!
//! * `scratch.generation` strictly increases across rounds (and across
//!   simulations sharing a recycled scratch), so a stale
//!   `hit_count`/`last_sender` entry can never alias a current one;
//! * the scratch's per-node arrays cover at least `graph.node_count()`
//!   entries (enforced whenever a scratch is installed);
//! * `last_sender[v]` is the unique transmitting neighbour whenever
//!   `hit_count[v] == 1`, because each marking pass writes it on the first
//!   hit of the round — and neighbour slices are sorted, so it equals the
//!   first transmitting neighbour in node order, matching the reference
//!   engine's `Heard::from` exactly.
//!
//! The original listener-centric delivery is retained, verbatim, as
//! [`Simulator::step_round_reference`] behind [`Engine::ListenerCentric`]:
//! it is the executable specification the equivalence suite checks the fast
//! engine against, round for round and event for event.

use crate::fault::{CompiledFaults, FaultKind, FaultPlan, RxFault};
use crate::message::RadioMessage;
use crate::node::{Action, RadioNode};
use crate::scratch::RoundScratch;
use crate::trace::{NodeEvent, RoundRecord, Trace};
use rn_graph::{Graph, NodeId};
use std::sync::Arc;

/// Sentinel `tx_index` marking a jamming node in the decide pass: a jammer
/// occupies a transmitter slot (it keeps the channel busy) but has no entry
/// in the message buffer. Real indices cannot collide with it — the message
/// buffer holds at most one entry per node and node counts are bounded far
/// below `u32::MAX` by the CSR offsets.
const JAMMER: u32 = u32::MAX;

/// Which delivery engine [`Simulator::step_round`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The transmitter-centric, allocation-free engine (the default): only
    /// transmitters' CSR neighbour slices are walked each round.
    #[default]
    TransmitterCentric,
    /// The original listener-centric engine, retained as an executable
    /// reference implementation: every listener scans its neighbour list.
    /// Slower by design; exists so equivalence tests (and sceptical users)
    /// can replay any workload on both engines and compare traces.
    ListenerCentric,
}

/// When the simulation should stop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopCondition {
    /// Run exactly this many rounds.
    AfterRounds(u64),
    /// Run until a round in which nobody transmits (the network has gone
    /// quiet), or until the given safety cap, whichever comes first.
    QuietOrCap(u64),
    /// Run until nobody has transmitted for `quiet` consecutive rounds, or
    /// until the `cap`, whichever comes first. Useful for protocols (like
    /// Algorithm B) that legitimately have isolated silent rounds in the
    /// middle of an execution.
    QuietFor {
        /// Number of consecutive silent rounds that ends the run.
        quiet: u64,
        /// Safety cap on the total number of rounds.
        cap: u64,
    },
}

/// Why the simulation stopped and how long it ran.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// Number of rounds executed.
    pub rounds_executed: u64,
    /// Whether the run ended because a user predicate returned true.
    pub predicate_satisfied: bool,
    /// Whether the run ended because the network went quiet (only possible
    /// with [`StopCondition::QuietOrCap`]).
    pub went_quiet: bool,
}

/// The synchronous radio-network simulator.
///
/// The graph is held behind an [`Arc`], so many simulators — for example the
/// repeated runs of one `Session`, or the parallel jobs of a batch — can
/// share a single topology without per-run copies. Plain [`Graph`] values are
/// still accepted everywhere via `impl Into<Arc<Graph>>`.
pub struct Simulator<N: RadioNode> {
    graph: Arc<Graph>,
    nodes: Vec<N>,
    trace: Trace<N::Msg>,
    round: u64,
    record_trace: bool,
    engine: Engine,
    /// Reusable numeric working arrays (see [`crate::scratch`]).
    scratch: RoundScratch,
    /// Reused per-round buffer of the transmitted messages, in transmitter
    /// order; cleared (capacity kept) and refilled by every decide pass.
    /// Listeners never touch it — the round's memory traffic is proportional
    /// to the number of transmitters, not to `n`.
    tx_messages: Vec<N::Msg>,
    /// Compiled fault schedule, `None` for fault-free runs (the common case:
    /// every fault check below starts with this cheap `Option` test, and an
    /// empty [`FaultPlan`] never compiles to `Some`).
    faults: Option<CompiledFaults>,
}

impl<N: RadioNode> Simulator<N> {
    /// Creates a simulator for `graph` with one protocol instance per node.
    ///
    /// Accepts an owned [`Graph`] or a shared `Arc<Graph>`; passing an `Arc`
    /// lets repeated runs on the same topology avoid cloning it.
    ///
    /// # Panics
    /// Panics if `nodes.len() != graph.node_count()`.
    pub fn new(graph: impl Into<Arc<Graph>>, nodes: Vec<N>) -> Self {
        let graph = graph.into();
        assert_eq!(
            nodes.len(),
            graph.node_count(),
            "need exactly one protocol instance per graph node"
        );
        Simulator {
            graph,
            nodes,
            trace: Trace::new(),
            round: 0,
            record_trace: true,
            engine: Engine::default(),
            // Deliberately empty: it grows on the first round, and Session
            // runs replace it with a pooled scratch before stepping — an
            // eagerly sized scratch here would be allocated just to be
            // thrown away on every pooled run.
            scratch: RoundScratch::new(),
            tx_messages: Vec::new(),
            faults: None,
        }
    }

    /// Installs a [`FaultPlan`] (see [`crate::fault`]): the scheduled events
    /// are applied by the engine — identically in both [`Engine`]s — while
    /// the nodes keep running their unmodified protocol.
    ///
    /// An empty plan installs nothing at all, so a simulator given
    /// [`FaultPlan::none`] is byte-identical in behaviour (traces,
    /// observations, statistics) to one that was never given a plan.
    ///
    /// # Panics
    /// Panics if the plan targets a node outside this graph.
    pub fn with_faults(mut self, plan: &FaultPlan) -> Self {
        self.faults = if plan.is_empty() {
            None
        } else {
            Some(CompiledFaults::compile(plan, self.graph.node_count()))
        };
        self
    }

    /// Disables trace recording (saves memory for very long benchmark runs).
    pub fn without_trace(mut self) -> Self {
        self.record_trace = false;
        self
    }

    /// Selects the delivery engine (default [`Engine::TransmitterCentric`]).
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Installs a recycled [`RoundScratch`], replacing the simulator's own.
    ///
    /// The scratch is grown to cover this graph if needed; its generation
    /// counter carries over, which is exactly what keeps stale entries from
    /// previous simulations unreadable. Batch drivers use this together with
    /// [`take_scratch`](Self::take_scratch) to amortize per-round buffers
    /// across many runs.
    pub fn with_scratch(mut self, mut scratch: RoundScratch) -> Self {
        scratch.ensure_nodes(self.graph.node_count());
        self.scratch = scratch;
        self
    }

    /// Removes and returns the scratch for recycling into another simulator,
    /// leaving this one with an empty scratch that would regrow on demand.
    pub fn take_scratch(&mut self) -> RoundScratch {
        std::mem::take(&mut self.scratch)
    }

    /// The graph being simulated.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Read access to the node states (omniscient harness view; the nodes
    /// themselves never see each other).
    pub fn nodes(&self) -> &[N] {
        &self.nodes
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &Trace<N::Msg> {
        &self.trace
    }

    /// Consumes the simulator, returning the trace and the final node states.
    pub fn into_parts(self) -> (Trace<N::Msg>, Vec<N>) {
        (self.trace, self.nodes)
    }

    /// Number of rounds executed so far.
    pub fn current_round(&self) -> u64 {
        self.round
    }

    /// Executes a single round and returns the number of transmitters.
    pub fn step_round(&mut self) -> usize {
        match self.engine {
            Engine::TransmitterCentric => self.step_round_transmitter_centric(),
            Engine::ListenerCentric => self.step_round_reference(),
        }
    }

    /// One round of the default transmitter-centric engine (see the module
    /// docs for the three-phase design and its invariants).
    fn step_round_transmitter_centric(&mut self) -> usize {
        self.round += 1;
        let round = self.round;
        let n = self.graph.node_count();
        let scratch = &mut self.scratch;
        scratch.ensure_nodes(n);
        scratch.generation += 1;
        let generation = scratch.generation;
        let faults = self.faults.as_ref();

        // Phase 1: every node decides. Transmitters are recorded sparsely —
        // node id, generation mark, and the message moved into the reused
        // message buffer; a listening node writes nothing at all. An inert
        // (crashed/asleep) node is never stepped; a jamming node's protocol
        // is suspended and it occupies a transmitter slot with the JAMMER
        // sentinel instead of a message.
        self.tx_messages.clear();
        scratch.transmitters.clear();
        for (v, node) in self.nodes.iter_mut().enumerate() {
            if let Some(f) = faults {
                if f.inert_kind(v, round).is_some() {
                    continue;
                }
                if f.is_jamming(v, round) {
                    scratch.tx_stamp[v] = generation;
                    scratch.tx_index[v] = JAMMER;
                    scratch.transmitters.push(v);
                    continue;
                }
            }
            match node.step() {
                Action::Transmit(m) => {
                    scratch.tx_stamp[v] = generation;
                    scratch.tx_index[v] = self.tx_messages.len() as u32;
                    scratch.transmitters.push(v);
                    self.tx_messages.push(m);
                }
                Action::Listen => {}
            }
        }

        // Phase 2: mark. Only the transmitters' CSR neighbour slices are
        // walked; each neighbour's (hit_count, last_sender) entry is claimed
        // for this round by stamping it with the current generation.
        for &t in &scratch.transmitters {
            for &w in self.graph.neighbors(t) {
                if scratch.stamp[w] == generation {
                    scratch.hit_count[w] += 1;
                } else {
                    scratch.stamp[w] = generation;
                    scratch.hit_count[w] = 1;
                    scratch.last_sender[w] = t;
                }
            }
        }

        // Phase 3: observe. A listener hears a message iff exactly one
        // neighbour transmitted; the message travels by reference, and the
        // trace (when recording) makes the only clone. Fault handling, all
        // behind the `Option` test: an inert node is deaf (no `receive`), a
        // jammer observes nothing and leaves only a trace marker, a sole
        // jamming "sender" is an undecodable collision, and receive-side
        // Drop/Corrupt faults rewrite a successful reception.
        let mut events: Vec<NodeEvent<N::Msg>> =
            Vec::with_capacity(if self.record_trace { n } else { 0 });
        let tx_stamp = &scratch.tx_stamp[..n];
        let stamp = &scratch.stamp[..n];
        let rx_window = faults.map_or(&[][..], |f| f.rx_window(round));
        for (v, node) in self.nodes.iter_mut().enumerate() {
            if let Some(f) = faults {
                if let Some(kind) = f.inert_kind(v, round) {
                    if self.record_trace {
                        events.push(NodeEvent::Faulted(kind));
                    }
                    continue;
                }
            }
            if tx_stamp[v] == generation {
                if scratch.tx_index[v] == JAMMER {
                    if self.record_trace {
                        events.push(NodeEvent::Faulted(FaultKind::Jamming));
                    }
                } else if self.record_trace {
                    let m = &self.tx_messages[scratch.tx_index[v] as usize];
                    events.push(NodeEvent::Transmitted(m.clone()));
                }
            } else if stamp[v] == generation {
                if scratch.hit_count[v] == 1 {
                    let w = scratch.last_sender[v];
                    if scratch.tx_index[w] == JAMMER {
                        // The only transmitting neighbour is a jammer: the
                        // channel is busy but carries nothing decodable.
                        node.receive(None);
                        if self.record_trace {
                            events.push(NodeEvent::Collision {
                                transmitting_neighbors: 1,
                            });
                        }
                    } else {
                        let msg = &self.tx_messages[scratch.tx_index[w] as usize];
                        match CompiledFaults::rx_fault(rx_window, v) {
                            Some(RxFault::Drop) => {
                                node.receive(None);
                                if self.record_trace {
                                    events.push(NodeEvent::Faulted(FaultKind::Dropped));
                                }
                            }
                            Some(RxFault::Corrupt) => {
                                if let Some(garbled) = msg.corrupted() {
                                    node.receive(Some(&garbled));
                                    if self.record_trace {
                                        events.push(NodeEvent::Heard {
                                            from: w,
                                            message: garbled,
                                        });
                                    }
                                } else {
                                    node.receive(None);
                                    if self.record_trace {
                                        events.push(NodeEvent::Faulted(FaultKind::Corrupted));
                                    }
                                }
                            }
                            None => {
                                node.receive(Some(msg));
                                if self.record_trace {
                                    events.push(NodeEvent::Heard {
                                        from: w,
                                        message: msg.clone(),
                                    });
                                }
                            }
                        }
                    }
                } else {
                    // Collision: indistinguishable from silence for the
                    // node; the count is already in the scratch.
                    node.receive(None);
                    if self.record_trace {
                        events.push(NodeEvent::Collision {
                            transmitting_neighbors: scratch.hit_count[v] as usize,
                        });
                    }
                }
            } else {
                node.receive(None);
                if self.record_trace {
                    events.push(NodeEvent::Silence);
                }
            }
        }

        if self.record_trace {
            self.trace.rounds.push(RoundRecord {
                round: self.round,
                events,
            });
        }
        scratch.transmitters.len()
    }

    /// Executes a single round with the retained listener-centric reference
    /// engine, regardless of the configured [`Engine`].
    ///
    /// This is the original delivery algorithm, kept verbatim: it allocates
    /// fresh action and transmit-flag vectors every round and resolves each
    /// listener by scanning its own neighbour list. It exists as the
    /// executable specification that `tests/engine_equivalence.rs` replays
    /// workloads against; production paths never call it.
    pub fn step_round_reference(&mut self) -> usize {
        self.round += 1;
        let round = self.round;
        let n = self.graph.node_count();
        let faults = self.faults.as_ref();

        // Phase 1: every node decides. Fault semantics mirror the fast
        // engine exactly: an inert (crashed/asleep) node is never stepped,
        // and a jamming node's protocol is suspended while it occupies the
        // channel — both stand in as `Listen` in the action vector, with
        // side masks carrying their true roles.
        let mut inert: Vec<Option<FaultKind>> = vec![None; n];
        let mut jamming: Vec<bool> = vec![false; n];
        let mut actions: Vec<Action<N::Msg>> = Vec::with_capacity(n);
        for (v, node) in self.nodes.iter_mut().enumerate() {
            if let Some(f) = faults {
                if let Some(kind) = f.inert_kind(v, round) {
                    inert[v] = Some(kind);
                    actions.push(Action::Listen);
                    continue;
                }
                if f.is_jamming(v, round) {
                    jamming[v] = true;
                    actions.push(Action::Listen);
                    continue;
                }
            }
            actions.push(node.step());
        }
        let transmitting: Vec<bool> = actions
            .iter()
            .enumerate()
            .map(|(v, a)| a.is_transmit() || jamming[v])
            .collect();
        let transmitter_count = transmitting.iter().filter(|&&t| t).count();

        // Phase 2: delivery. A listener hears a message iff exactly one
        // neighbour transmitted.
        let rx_window = faults.map_or(&[][..], |f| f.rx_window(round));
        let mut events: Vec<NodeEvent<N::Msg>> =
            Vec::with_capacity(if self.record_trace { n } else { 0 });
        for v in 0..n {
            if let Some(kind) = inert[v] {
                if self.record_trace {
                    events.push(NodeEvent::Faulted(kind));
                }
                continue;
            }
            if jamming[v] {
                if self.record_trace {
                    events.push(NodeEvent::Faulted(FaultKind::Jamming));
                }
                continue;
            }
            match &actions[v] {
                Action::Transmit(m) => {
                    if self.record_trace {
                        events.push(NodeEvent::Transmitted(m.clone()));
                    }
                }
                Action::Listen => {
                    let mut tx_neighbors = self
                        .graph
                        .neighbors(v)
                        .iter()
                        .copied()
                        .filter(|&w| transmitting[w]);
                    let first: Option<NodeId> = tx_neighbors.next();
                    let second: Option<NodeId> = tx_neighbors.next();
                    match (first, second) {
                        (Some(w), None) if jamming[w] => {
                            // The only transmitting neighbour is a jammer:
                            // busy channel, nothing decodable.
                            self.nodes[v].receive(None);
                            if self.record_trace {
                                events.push(NodeEvent::Collision {
                                    transmitting_neighbors: 1,
                                });
                            }
                        }
                        (Some(w), None) => {
                            let msg = actions[w].message().expect("w transmits");
                            match CompiledFaults::rx_fault(rx_window, v) {
                                Some(RxFault::Drop) => {
                                    self.nodes[v].receive(None);
                                    if self.record_trace {
                                        events.push(NodeEvent::Faulted(FaultKind::Dropped));
                                    }
                                }
                                Some(RxFault::Corrupt) => {
                                    if let Some(garbled) = msg.corrupted() {
                                        self.nodes[v].receive(Some(&garbled));
                                        if self.record_trace {
                                            events.push(NodeEvent::Heard {
                                                from: w,
                                                message: garbled,
                                            });
                                        }
                                    } else {
                                        self.nodes[v].receive(None);
                                        if self.record_trace {
                                            events.push(NodeEvent::Faulted(FaultKind::Corrupted));
                                        }
                                    }
                                }
                                None => {
                                    self.nodes[v].receive(Some(msg));
                                    if self.record_trace {
                                        events.push(NodeEvent::Heard {
                                            from: w,
                                            message: msg.clone(),
                                        });
                                    }
                                }
                            }
                        }
                        (Some(_), Some(_)) => {
                            // Collision: indistinguishable from silence for
                            // the node.
                            self.nodes[v].receive(None);
                            if self.record_trace {
                                let count = self
                                    .graph
                                    .neighbors(v)
                                    .iter()
                                    .filter(|&&w| transmitting[w])
                                    .count();
                                events.push(NodeEvent::Collision {
                                    transmitting_neighbors: count,
                                });
                            }
                        }
                        (None, _) => {
                            self.nodes[v].receive(None);
                            if self.record_trace {
                                events.push(NodeEvent::Silence);
                            }
                        }
                    }
                }
            }
        }

        if self.record_trace {
            self.trace.rounds.push(RoundRecord {
                round: self.round,
                events,
            });
        }
        transmitter_count
    }

    /// Runs until the stop condition is met or `predicate` (evaluated after
    /// each round, with harness-level omniscience) returns true.
    pub fn run_until<P>(&mut self, stop: StopCondition, mut predicate: P) -> RunOutcome
    where
        P: FnMut(&Self) -> bool,
    {
        let (cap, quiet_needed) = match stop {
            StopCondition::AfterRounds(k) => (k, None),
            StopCondition::QuietOrCap(k) => (k, Some(1)),
            StopCondition::QuietFor { quiet, cap } => (cap, Some(quiet)),
        };
        let start = self.round;
        let mut quiet_streak = 0u64;
        while self.round - start < cap {
            let transmitters = self.step_round();
            if predicate(self) {
                return RunOutcome {
                    rounds_executed: self.round - start,
                    predicate_satisfied: true,
                    went_quiet: false,
                };
            }
            if transmitters == 0 {
                quiet_streak += 1;
            } else {
                quiet_streak = 0;
            }
            if let Some(needed) = quiet_needed {
                if quiet_streak >= needed {
                    return RunOutcome {
                        rounds_executed: self.round - start,
                        predicate_satisfied: false,
                        went_quiet: true,
                    };
                }
            }
        }
        RunOutcome {
            rounds_executed: self.round - start,
            predicate_satisfied: false,
            went_quiet: false,
        }
    }

    /// Runs exactly `rounds` rounds (unless a predicate is wanted, use
    /// [`run_until`](Self::run_until)).
    pub fn run_rounds(&mut self, rounds: u64) -> RunOutcome {
        self.run_until(StopCondition::AfterRounds(rounds), |_| false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rn_graph::generators;

    /// Test protocol: node 0 ("source") transmits `42` in its first round and
    /// then stays silent; everyone else listens forever and remembers what it
    /// heard.
    struct OneShot {
        is_source: bool,
        sent: bool,
        heard: Option<u64>,
        listen_outcomes: Vec<Option<u64>>,
    }

    impl OneShot {
        fn new(is_source: bool) -> Self {
            OneShot {
                is_source,
                sent: false,
                heard: None,
                listen_outcomes: Vec::new(),
            }
        }
    }

    impl RadioNode for OneShot {
        type Msg = u64;
        fn step(&mut self) -> Action<u64> {
            if self.is_source && !self.sent {
                self.sent = true;
                Action::Transmit(42)
            } else {
                Action::Listen
            }
        }
        fn receive(&mut self, heard: Option<&u64>) {
            let h = heard.copied();
            self.listen_outcomes.push(h);
            if self.heard.is_none() {
                self.heard = h;
            }
        }
    }

    /// Protocol in which the given set of nodes all transmit in round 1.
    struct Simultaneous {
        transmit_first: bool,
        done: bool,
        heard: Option<u64>,
        listened_rounds: usize,
    }

    impl RadioNode for Simultaneous {
        type Msg = u64;
        fn step(&mut self) -> Action<u64> {
            if self.transmit_first && !self.done {
                self.done = true;
                Action::Transmit(7)
            } else {
                Action::Listen
            }
        }
        fn receive(&mut self, heard: Option<&u64>) {
            self.listened_rounds += 1;
            if self.heard.is_none() {
                self.heard = heard.copied();
            }
        }
    }

    fn one_shot_sim(g: Graph) -> Simulator<OneShot> {
        let nodes: Vec<OneShot> = (0..g.node_count()).map(|v| OneShot::new(v == 0)).collect();
        Simulator::new(g, nodes)
    }

    #[test]
    #[should_panic(expected = "one protocol instance per graph node")]
    fn mismatched_node_count_panics() {
        let g = generators::path(3);
        let _ = Simulator::new(g, vec![OneShot::new(true)]);
    }

    #[test]
    fn single_transmitter_is_heard_by_all_neighbors() {
        let g = generators::star(5); // 0 is the centre
        let mut sim = one_shot_sim(g);
        sim.step_round();
        for v in 1..5 {
            assert_eq!(sim.nodes()[v].heard, Some(42), "leaf {v}");
        }
        // Source transmitted, so it observed nothing (receive never called).
        assert!(sim.nodes()[0].listen_outcomes.is_empty());
    }

    #[test]
    fn non_neighbors_hear_nothing() {
        let g = generators::path(3); // 0 - 1 - 2
        let mut sim = one_shot_sim(g);
        sim.step_round();
        assert_eq!(sim.nodes()[1].heard, Some(42));
        assert_eq!(sim.nodes()[2].heard, None);
    }

    #[test]
    fn collision_delivers_nothing() {
        // Path 0 - 1 - 2: nodes 0 and 2 transmit simultaneously; node 1 must
        // hear nothing (collision without detection).
        let g = generators::path(3);
        let nodes = vec![
            Simultaneous {
                transmit_first: true,
                done: false,
                heard: None,
                listened_rounds: 0,
            },
            Simultaneous {
                transmit_first: false,
                done: false,
                heard: None,
                listened_rounds: 0,
            },
            Simultaneous {
                transmit_first: true,
                done: false,
                heard: None,
                listened_rounds: 0,
            },
        ];
        let mut sim = Simulator::new(g, nodes);
        sim.step_round();
        assert_eq!(sim.nodes()[1].heard, None);
        assert_eq!(sim.nodes()[1].listened_rounds, 1);
        // Trace records a collision with 2 transmitting neighbours.
        assert_eq!(sim.trace().rounds[0].collision_nodes(), vec![1]);
        match &sim.trace().rounds[0].events[1] {
            NodeEvent::Collision {
                transmitting_neighbors,
            } => {
                assert_eq!(*transmitting_neighbors, 2);
            }
            other => panic!("expected collision, got {other:?}"),
        }
    }

    #[test]
    fn collision_indistinguishable_from_silence_at_the_node() {
        // From the node's perspective, a collision round and a silent round
        // deliver exactly the same observation (None).
        let g = generators::path(3);
        let nodes = vec![
            Simultaneous {
                transmit_first: true,
                done: false,
                heard: None,
                listened_rounds: 0,
            },
            Simultaneous {
                transmit_first: false,
                done: false,
                heard: None,
                listened_rounds: 0,
            },
            Simultaneous {
                transmit_first: true,
                done: false,
                heard: None,
                listened_rounds: 0,
            },
        ];
        let mut sim = Simulator::new(g, nodes);
        sim.step_round(); // collision at node 1
        sim.step_round(); // silence everywhere
                          // Both rounds look identical to node 1 (None twice).
        assert_eq!(sim.nodes()[1].listened_rounds, 2);
        assert_eq!(sim.nodes()[1].heard, None);
    }

    #[test]
    fn trace_records_rounds_and_transmitters() {
        let g = generators::path(4);
        let mut sim = one_shot_sim(g);
        sim.run_rounds(3);
        assert_eq!(sim.trace().len(), 3);
        assert_eq!(sim.trace().rounds[0].transmitters(), vec![0]);
        assert!(sim.trace().rounds[1].transmitters().is_empty());
        assert_eq!(sim.trace().transmit_rounds(0), vec![1]);
        assert_eq!(sim.trace().first_receive_round(1), Some(1));
    }

    #[test]
    fn run_until_predicate_stops_early() {
        let g = generators::star(6);
        let mut sim = one_shot_sim(g);
        let outcome = sim.run_until(StopCondition::AfterRounds(100), |s| {
            s.nodes().iter().skip(1).all(|n| n.heard.is_some())
        });
        assert!(outcome.predicate_satisfied);
        assert_eq!(outcome.rounds_executed, 1);
        assert_eq!(sim.current_round(), 1);
    }

    #[test]
    fn quiet_detection_stops_when_no_one_transmits() {
        let g = generators::path(3);
        let mut sim = one_shot_sim(g);
        let outcome = sim.run_until(StopCondition::QuietOrCap(50), |_| false);
        // Round 1: source transmits; round 2: silence -> quiet.
        assert!(outcome.went_quiet);
        assert_eq!(outcome.rounds_executed, 2);
    }

    #[test]
    fn after_rounds_cap_reached() {
        let g = generators::path(3);
        let mut sim = one_shot_sim(g);
        let outcome = sim.run_rounds(5);
        assert_eq!(outcome.rounds_executed, 5);
        assert!(!outcome.predicate_satisfied);
        assert!(!outcome.went_quiet);
    }

    #[test]
    fn without_trace_records_nothing() {
        let g = generators::star(4);
        let nodes: Vec<OneShot> = (0..4).map(|v| OneShot::new(v == 0)).collect();
        let mut sim = Simulator::new(g, nodes).without_trace();
        sim.run_rounds(3);
        assert!(sim.trace().is_empty());
        // Delivery still works without the trace.
        assert_eq!(sim.nodes()[1].heard, Some(42));
    }

    #[test]
    fn into_parts_returns_trace_and_nodes() {
        let g = generators::path(2);
        let mut sim = one_shot_sim(g);
        sim.run_rounds(2);
        let (trace, nodes) = sim.into_parts();
        assert_eq!(trace.len(), 2);
        assert_eq!(nodes.len(), 2);
        assert_eq!(nodes[1].heard, Some(42));
    }

    #[test]
    fn engines_agree_on_collision_heavy_round() {
        // Star: all 4 leaves transmit at the centre simultaneously.
        let g = generators::star(5);
        let make_nodes = || {
            (0..5)
                .map(|v| Simultaneous {
                    transmit_first: v != 0,
                    done: false,
                    heard: None,
                    listened_rounds: 0,
                })
                .collect::<Vec<_>>()
        };
        let mut fast = Simulator::new(g.clone(), make_nodes());
        let mut reference = Simulator::new(g, make_nodes()).with_engine(Engine::ListenerCentric);
        let tx_fast = fast.step_round();
        let tx_ref = reference.step_round();
        assert_eq!(tx_fast, tx_ref);
        assert_eq!(fast.trace().rounds, reference.trace().rounds);
        match &fast.trace().rounds[0].events[0] {
            NodeEvent::Collision {
                transmitting_neighbors,
            } => assert_eq!(*transmitting_neighbors, 4),
            other => panic!("expected collision at the centre, got {other:?}"),
        }
    }

    #[test]
    fn recycled_scratch_produces_identical_runs() {
        // Run on a larger graph first, then recycle the (bigger, stale)
        // scratch into a smaller simulation: generation stamping must keep
        // the stale entries invisible.
        let big = generators::star(9);
        let mut first = one_shot_sim(big);
        first.run_rounds(4);
        let scratch = first.take_scratch();
        assert!(scratch.capacity() >= 9);

        let small = generators::path(3);
        let nodes: Vec<OneShot> = (0..3).map(|v| OneShot::new(v == 0)).collect();
        let mut recycled = Simulator::new(small.clone(), nodes).with_scratch(scratch);
        recycled.run_rounds(2);

        let mut fresh = one_shot_sim(small);
        fresh.run_rounds(2);
        assert_eq!(recycled.trace().rounds, fresh.trace().rounds);
        assert_eq!(recycled.nodes()[1].heard, fresh.nodes()[1].heard);
    }

    #[test]
    fn take_scratch_leaves_a_usable_simulator() {
        let g = generators::path(4);
        let mut sim = one_shot_sim(g);
        sim.step_round();
        let _scratch = sim.take_scratch();
        // The replacement scratch regrows on demand.
        sim.step_round();
        assert_eq!(sim.current_round(), 2);
        assert_eq!(sim.nodes()[1].heard, Some(42));
    }

    #[test]
    fn none_plan_is_byte_identical_to_no_plan() {
        let g = generators::path(5);
        let mut plain = one_shot_sim(g.clone());
        plain.run_rounds(4);
        let nodes: Vec<OneShot> = (0..5).map(|v| OneShot::new(v == 0)).collect();
        let mut with_none = Simulator::new(g, nodes).with_faults(&FaultPlan::none());
        assert!(with_none.faults.is_none(), "empty plan must compile away");
        with_none.run_rounds(4);
        assert_eq!(plain.trace().rounds, with_none.trace().rounds);
        for (a, b) in plain.nodes().iter().zip(with_none.nodes()) {
            assert_eq!(a.listen_outcomes, b.listen_outcomes);
        }
    }

    #[test]
    fn crashed_source_never_transmits_and_trace_marks_it() {
        let g = generators::star(4);
        let nodes: Vec<OneShot> = (0..4).map(|v| OneShot::new(v == 0)).collect();
        let plan = FaultPlan::none().crash(0, 1);
        let mut sim = Simulator::new(g, nodes).with_faults(&plan);
        sim.run_rounds(3);
        for v in 1..4 {
            assert_eq!(sim.nodes()[v].heard, None, "leaf {v} heard a dead source");
        }
        assert_eq!(sim.trace().fault_rounds(0), vec![1, 2, 3]);
        assert!(matches!(
            sim.trace().rounds[0].events[0],
            NodeEvent::Faulted(FaultKind::Crashed)
        ));
        // The dead node's step() was never called, so its transmit flag is
        // still pending.
        assert!(!sim.nodes()[0].sent);
    }

    #[test]
    fn late_wake_defers_the_first_transmission() {
        let g = generators::path(3);
        let nodes: Vec<OneShot> = (0..3).map(|v| OneShot::new(v == 0)).collect();
        let plan = FaultPlan::none().late_wake(0, 3);
        let mut sim = Simulator::new(g, nodes).with_faults(&plan);
        sim.run_rounds(4);
        assert_eq!(sim.trace().fault_rounds(0), vec![1, 2]);
        assert_eq!(sim.trace().transmit_rounds(0), vec![3]);
        assert_eq!(sim.trace().first_receive_round(1), Some(3));
    }

    #[test]
    fn jamming_neighbour_forces_collisions_and_counts_as_transmitter() {
        // Path 0 - 1 - 2: node 2 jams round 1, so node 1 sees a collision
        // (source + jammer) and node 0's broadcast is lost on it.
        let g = generators::path(3);
        let nodes: Vec<OneShot> = (0..3).map(|v| OneShot::new(v == 0)).collect();
        let plan = FaultPlan::none().jam(2, 1, 1);
        let mut sim = Simulator::new(g, nodes).with_faults(&plan);
        let transmitters = sim.step_round();
        assert_eq!(transmitters, 2, "source + jammer both occupy the channel");
        assert_eq!(sim.nodes()[1].heard, None);
        assert!(matches!(
            sim.trace().rounds[0].events[1],
            NodeEvent::Collision {
                transmitting_neighbors: 2
            }
        ));
        assert!(matches!(
            sim.trace().rounds[0].events[2],
            NodeEvent::Faulted(FaultKind::Jamming)
        ));
    }

    #[test]
    fn lone_jammer_reads_as_undecodable_collision() {
        let g = generators::path(2);
        let nodes: Vec<OneShot> = (0..2).map(|_| OneShot::new(false)).collect();
        let plan = FaultPlan::none().jam(0, 1, 1);
        let mut sim = Simulator::new(g, nodes).with_faults(&plan);
        sim.step_round();
        assert_eq!(sim.nodes()[1].heard, None);
        assert!(matches!(
            sim.trace().rounds[0].events[1],
            NodeEvent::Collision {
                transmitting_neighbors: 1
            }
        ));
    }

    #[test]
    fn drop_and_corrupt_rewrite_successful_receptions() {
        // Star with centre 0 transmitting in round 1: leaf 1 drops it, leaf 2
        // decodes a garbled copy (u64 corruption flips the low bit), leaf 3
        // hears it intact.
        let g = generators::star(4);
        let nodes: Vec<OneShot> = (0..4).map(|v| OneShot::new(v == 0)).collect();
        let plan = FaultPlan::none().drop_message(1, 1).corrupt(2, 1);
        let mut sim = Simulator::new(g, nodes).with_faults(&plan);
        sim.step_round();
        assert_eq!(sim.nodes()[1].heard, None);
        assert_eq!(sim.nodes()[2].heard, Some(43));
        assert_eq!(sim.nodes()[3].heard, Some(42));
        assert!(matches!(
            sim.trace().rounds[0].events[1],
            NodeEvent::Faulted(FaultKind::Dropped)
        ));
        assert!(matches!(
            sim.trace().rounds[0].events[2],
            NodeEvent::Heard {
                from: 0,
                message: 43
            }
        ));
    }

    #[test]
    fn rx_faults_are_noops_without_a_reception() {
        // Node 2 on a path never hears the round-1 broadcast (it is two hops
        // away), so dropping its round-1 reception changes nothing.
        let g = generators::path(3);
        let nodes: Vec<OneShot> = (0..3).map(|v| OneShot::new(v == 0)).collect();
        let plan = FaultPlan::none().drop_message(2, 1);
        let mut sim = Simulator::new(g, nodes).with_faults(&plan);
        sim.step_round();
        assert!(matches!(
            sim.trace().rounds[0].events[2],
            NodeEvent::Silence
        ));
    }

    #[test]
    fn engines_agree_under_every_fault_kind() {
        let g = generators::grid(3, 4);
        let plan = FaultPlan::none()
            .crash(5, 2)
            .jam(7, 1, 3)
            .late_wake(0, 2)
            .drop_message(2, 2)
            .corrupt(6, 3);
        let make = |engine: Engine| {
            let nodes: Vec<OneShot> = (0..12).map(|v| OneShot::new(v == 1)).collect();
            Simulator::new(g.clone(), nodes)
                .with_engine(engine)
                .with_faults(&plan)
        };
        let mut fast = make(Engine::TransmitterCentric);
        let mut reference = make(Engine::ListenerCentric);
        for _ in 0..6 {
            assert_eq!(fast.step_round(), reference.step_round());
        }
        assert_eq!(fast.trace().rounds, reference.trace().rounds);
        for (a, b) in fast.nodes().iter().zip(reference.nodes()) {
            assert_eq!(a.listen_outcomes, b.listen_outcomes);
        }
    }

    #[test]
    #[should_panic(expected = "targets node 9")]
    fn with_faults_rejects_out_of_range_nodes() {
        let g = generators::path(3);
        let nodes: Vec<OneShot> = (0..3).map(|v| OneShot::new(v == 0)).collect();
        let _ = Simulator::new(g, nodes).with_faults(&FaultPlan::none().crash(9, 1));
    }

    #[test]
    fn multiple_sequential_runs_accumulate_rounds() {
        let g = generators::path(3);
        let mut sim = one_shot_sim(g);
        sim.run_rounds(2);
        sim.run_rounds(3);
        assert_eq!(sim.current_round(), 5);
        assert_eq!(sim.trace().len(), 5);
        assert_eq!(sim.trace().rounds.last().unwrap().round, 5);
    }
}
