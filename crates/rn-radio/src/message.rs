//! The [`RadioMessage`] trait: what the simulator requires of transmitted
//! messages.
//!
//! The simulator itself never inspects message contents; it only clones them
//! for delivery and asks for their size in bits so the experiment harness can
//! account for communication cost (the paper distinguishes algorithms using
//! constant-size messages from those appending an O(log n)-bit timestamp).

/// A message that can be transmitted over the radio network.
pub trait RadioMessage: Clone {
    /// Size of this message in bits, as accounted by the experiments.
    ///
    /// The convention used throughout the repository: the source message µ
    /// counts as 1 bit of "payload type" plus its own length; control words
    /// ("stay", "ack", ...) count as a constant number of bits; appended round
    /// numbers count as `ceil(log2(value + 2))` bits. Implementations are free
    /// to use any consistent convention — the experiments only compare
    /// relative sizes.
    fn bit_size(&self) -> usize;

    /// A deterministically garbled copy of this message, used by the fault
    /// injector (see [`crate::fault`]) to model receive-side corruption:
    /// `Some(garbled)` means the listener decodes a *wrong* message,
    /// `None` means the corruption is undecodable and the listener observes
    /// silence.
    ///
    /// The default is `None` — the safe choice for structured protocol
    /// messages, where an arbitrary bitflip rarely yields a valid frame.
    /// The result must be a pure function of `self` so faulted runs stay
    /// byte-identical across engines and thread counts.
    fn corrupted(&self) -> Option<Self> {
        None
    }
}

/// Number of bits needed to write `value` in binary (at least 1).
pub fn bits_for(value: u64) -> usize {
    (64 - value.leading_zeros()).max(1) as usize
}

impl RadioMessage for u64 {
    fn bit_size(&self) -> usize {
        bits_for(*self)
    }

    /// Garbles by flipping the lowest payload bit — deterministic and always
    /// decodable, so corruption faults on raw `u64` protocols deliver a
    /// *wrong* value rather than silence.
    fn corrupted(&self) -> Option<Self> {
        Some(*self ^ 1)
    }
}

impl RadioMessage for String {
    fn bit_size(&self) -> usize {
        self.len() * 8
    }
}

impl<M: RadioMessage> RadioMessage for Option<M> {
    fn bit_size(&self) -> usize {
        1 + self.as_ref().map_or(0, RadioMessage::bit_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_small_values() {
        assert_eq!(bits_for(0), 1);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 3);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 9);
    }

    #[test]
    fn u64_bit_size() {
        assert_eq!(7u64.bit_size(), 3);
        assert_eq!(0u64.bit_size(), 1);
    }

    #[test]
    fn string_bit_size() {
        assert_eq!("stay".to_string().bit_size(), 32);
        assert_eq!(String::new().bit_size(), 0);
    }

    #[test]
    fn corrupted_default_is_undecodable_and_u64_flips_a_bit() {
        assert_eq!("x".to_string().corrupted(), None);
        assert_eq!(7u64.corrupted(), Some(6));
        assert_eq!(6u64.corrupted(), Some(7));
    }

    #[test]
    fn option_bit_size_adds_presence_bit() {
        let some: Option<u64> = Some(4);
        let none: Option<u64> = None;
        assert_eq!(some.bit_size(), 1 + 3);
        assert_eq!(none.bit_size(), 1);
    }
}
