//! # rn-radio
//!
//! A synchronous radio-network simulator implementing exactly the model of
//! the paper "Constant-Length Labeling Schemes for Deterministic Radio
//! Broadcast" (SPAA 2019), §1.1:
//!
//! * time proceeds in synchronous rounds;
//! * in each round every node either **transmits** a message to all its
//!   neighbours or stays silent and **listens**;
//! * a listening node hears a message iff **exactly one** of its neighbours
//!   transmits in that round;
//! * there is **no collision detection**: when zero or several neighbours
//!   transmit, the listener hears nothing and cannot tell the two situations
//!   apart;
//! * a transmitting node hears nothing in that round.
//!
//! Crucially, the simulator never exposes the global round number to the
//! nodes: a node's behaviour may depend only on its own state (derived from
//! its label) and on the sequence of messages it has heard, exactly as the
//! universal-algorithm definition in the paper requires. The global round
//! counter exists only in the harness-facing API (traces, statistics, stop
//! conditions).
//!
//! The crate is protocol-agnostic: algorithms implement the [`RadioNode`]
//! trait (in `rn-broadcast` for the paper's algorithms) and the simulator
//! executes any such protocol on any [`rn_graph::Graph`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod batch;
pub mod digest;
pub mod fault;
pub mod message;
pub mod node;
pub mod scratch;
pub mod simulator;
pub mod stats;
#[cfg(any(test, feature = "testing"))]
pub mod testing;
pub mod trace;

pub use audit::{audit_wake_hints, HintViolationKind, WakeHintAudit, WakeHintViolation};
pub use digest::Digest;
pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use message::RadioMessage;
pub use node::{Action, RadioNode};
pub use scratch::RoundScratch;
pub use simulator::{Engine, RunOutcome, Simulator, StopCondition};
pub use stats::ExecutionStats;
pub use trace::{RoundRecord, ShapeEvent, ShapeRound, Trace, TraceShape};

// The telemetry vocabulary the simulator speaks (`Simulator::with_metrics`
// takes a boxed sink; `metrics_counters` returns the aggregate), re-exported
// so downstream crates need not depend on `rn-telemetry` directly.
pub use rn_telemetry::{CounterSink, MetricsSink, NoopSink, RoundMetrics, RunCounters};
