//! Parallel execution of many independent simulation jobs.
//!
//! Experiment sweeps and `Session::run_batch` (in `rn-broadcast`) run many
//! independent simulations — one per graph size × family × seed, or one per
//! run spec. Each simulation is single-threaded and deterministic; the batch
//! itself is embarrassingly parallel, so we fan the jobs out over a small
//! pool of scoped threads. Results are returned in job order, so parallel and
//! sequential batches produce byte-identical reports.
//!
//! This executor lives here, below both `rn-broadcast` and `rn-experiments`
//! in the crate graph, so the session API and the sweep harness share one
//! thread-pool implementation without a dependency cycle.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `worker` on every job, using up to `threads` worker threads, and
/// returns the results in the same order as the input jobs.
///
/// With `threads <= 1` the jobs are executed inline on the calling thread,
/// which is occasionally useful for debugging and is exactly equivalent.
pub fn run_parallel<T, R, F>(jobs: Vec<T>, threads: usize, worker: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let job_count = jobs.len();
    if job_count == 0 {
        return Vec::new();
    }
    if threads <= 1 {
        return jobs.into_iter().map(worker).collect();
    }

    // Wrap jobs in Options so worker threads can take ownership one at a time.
    let slots: Vec<Mutex<Option<T>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..job_count).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    let thread_count = threads.min(job_count);
    std::thread::scope(|scope| {
        for _ in 0..thread_count {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= job_count {
                    break;
                }
                let job = slots[idx]
                    .lock()
                    .expect("job mutex not poisoned")
                    .take()
                    .expect("each job is taken exactly once");
                let result = worker(job);
                *results[idx].lock().expect("result mutex not poisoned") = Some(result);
            });
        }
    });

    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result mutex not poisoned")
                .expect("every job produced a result")
        })
        .collect()
}

/// A sensible default worker-thread count: the available parallelism capped
/// at 8 (simulation sweeps are memory-light, so more threads rarely help).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_job_list() {
        let out: Vec<u32> = run_parallel(Vec::<u32>::new(), 4, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn sequential_mode_preserves_order() {
        let jobs: Vec<u64> = (0..100).collect();
        let out = run_parallel(jobs.clone(), 1, |x| x * 2);
        assert_eq!(out, jobs.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_mode_preserves_order() {
        let jobs: Vec<u64> = (0..500).collect();
        let out = run_parallel(jobs.clone(), 4, |x| x * x);
        assert_eq!(out, jobs.iter().map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_equals_sequential() {
        let jobs: Vec<u64> = (0..200).collect();
        let seq = run_parallel(jobs.clone(), 1, |x| x % 7);
        let par = run_parallel(jobs, 6, |x| x % 7);
        assert_eq!(seq, par);
    }

    #[test]
    fn more_threads_than_jobs() {
        let out = run_parallel(vec![1u32, 2, 3], 16, |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
        assert!(default_threads() <= 8);
    }
}
