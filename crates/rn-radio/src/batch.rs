//! Parallel execution of many independent simulation jobs.
//!
//! Experiment sweeps and `Session::run_batch` (in `rn-broadcast`) run many
//! independent simulations — one per graph size × family × seed, or one per
//! run spec. Each simulation is single-threaded and deterministic; the batch
//! itself is embarrassingly parallel, so we fan the jobs out over a small
//! pool of scoped threads. Results are returned in job order, so parallel and
//! sequential batches produce byte-identical reports.
//!
//! This executor lives here, below both `rn-broadcast` and `rn-experiments`
//! in the crate graph, so the session API and the sweep harness share one
//! thread-pool implementation without a dependency cycle.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `worker` on every job, using up to `threads` worker threads, and
/// returns the results in the same order as the input jobs.
///
/// With `threads <= 1` the jobs are executed inline on the calling thread,
/// which is occasionally useful for debugging and is exactly equivalent.
pub fn run_parallel<T, R, F>(jobs: Vec<T>, threads: usize, worker: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let job_count = jobs.len();
    if job_count == 0 {
        return Vec::new();
    }
    if threads <= 1 {
        return jobs.into_iter().map(worker).collect();
    }

    // Wrap jobs in Options so worker threads can take ownership one at a time.
    let slots: Vec<Mutex<Option<T>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..job_count).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    let thread_count = threads.min(job_count);
    std::thread::scope(|scope| {
        for _ in 0..thread_count {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= job_count {
                    break;
                }
                let job = slots[idx]
                    .lock()
                    .expect("job mutex not poisoned")
                    .take()
                    .expect("each job is taken exactly once");
                let result = worker(job);
                *results[idx].lock().expect("result mutex not poisoned") = Some(result);
            });
        }
    });

    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result mutex not poisoned")
                .expect("every job produced a result")
        })
        .collect()
}

/// Batches at least this many jobs count as "large" for
/// [`default_threads_for`]: enough independent simulations to keep a big
/// machine busy past the small-batch cap.
pub const LARGE_BATCH_JOBS: usize = 32;

/// A sensible default worker-thread count: the `RN_THREADS` environment
/// override if set, otherwise the available parallelism capped at
/// [`MAX_DEFAULT_THREADS`]. Equivalent to [`default_threads_for`] with an
/// unbounded batch; callers that know their job count should prefer that.
///
/// Thread count never affects results — jobs return in spec order, so
/// reports are byte-identical at any thread count (see [`run_parallel`]).
pub fn default_threads() -> usize {
    default_threads_for(usize::MAX)
}

/// Hard ceiling on the default worker count. An explicit `--threads` /
/// `RN_THREADS` can exceed it.
pub const MAX_DEFAULT_THREADS: usize = 64;

/// Default worker-thread count for a batch of `jobs` independent
/// simulations.
///
/// * `RN_THREADS` (a positive integer) overrides everything — the escape
///   hatch for schedulers and benchmarking scripts.
/// * Small batches (fewer than [`LARGE_BATCH_JOBS`] jobs) cap at 8 workers:
///   per-thread labeling/scratch warm-up dominates below that.
/// * Large batches use the machine's full available parallelism (up to
///   [`MAX_DEFAULT_THREADS`]), so a 16- or 64-core host is no longer half
///   idle on big sweeps.
/// * Never more threads than jobs.
pub fn default_threads_for(jobs: usize) -> usize {
    if let Some(t) = env_thread_override() {
        return t;
    }
    let available = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let cap = if jobs >= LARGE_BATCH_JOBS {
        MAX_DEFAULT_THREADS
    } else {
        8
    };
    available.min(cap).min(jobs.max(1))
}

/// The `RN_THREADS` override, if set to a positive integer (anything else is
/// ignored rather than guessed at).
fn env_thread_override() -> Option<usize> {
    std::env::var("RN_THREADS")
        .ok()?
        .trim()
        .parse::<usize>()
        .ok()
        .filter(|&t| t >= 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_job_list() {
        let out: Vec<u32> = run_parallel(Vec::<u32>::new(), 4, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn sequential_mode_preserves_order() {
        let jobs: Vec<u64> = (0..100).collect();
        let out = run_parallel(jobs.clone(), 1, |x| x * 2);
        assert_eq!(out, jobs.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_mode_preserves_order() {
        let jobs: Vec<u64> = (0..500).collect();
        let out = run_parallel(jobs.clone(), 4, |x| x * x);
        assert_eq!(out, jobs.iter().map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_equals_sequential() {
        // Results must be byte-identical at every thread count, including
        // counts past the old hard cap of 8: ordering comes from the job
        // index, never from scheduling.
        let jobs: Vec<u64> = (0..200).collect();
        let seq = run_parallel(jobs.clone(), 1, |x| x % 7);
        for threads in [2usize, 6, 8, 16, 32] {
            let par = run_parallel(jobs.clone(), threads, |x| x % 7);
            assert_eq!(seq, par, "{threads} threads");
        }
    }

    #[test]
    fn more_threads_than_jobs() {
        let out = run_parallel(vec![1u32, 2, 3], 16, |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    /// One test (not several) because it mutates `RN_THREADS`, and the test
    /// harness runs tests of a crate concurrently in one process: splitting
    /// the env-free assertions out would race them against the override.
    #[test]
    fn default_thread_policy() {
        let saved = std::env::var("RN_THREADS").ok();
        std::env::remove_var("RN_THREADS");

        // Without an override: positive, capped, never more than jobs.
        assert!(default_threads() >= 1);
        assert!(default_threads() <= MAX_DEFAULT_THREADS);
        assert_eq!(default_threads(), default_threads_for(usize::MAX));
        assert_eq!(default_threads_for(1), 1);
        assert_eq!(default_threads_for(0), 1);
        assert!(default_threads_for(3) <= 3);
        // Small batches stay under the small-batch cap; large batches may
        // use the whole machine.
        assert!(default_threads_for(LARGE_BATCH_JOBS - 1) <= 8);
        let large = default_threads_for(10_000);
        assert!((1..=MAX_DEFAULT_THREADS).contains(&large));

        // RN_THREADS override wins, regardless of batch size.
        std::env::set_var("RN_THREADS", "13");
        assert_eq!(default_threads(), 13);
        assert_eq!(default_threads_for(2), 13, "explicit override is obeyed");
        // Non-positive or garbage overrides are ignored, not guessed at.
        std::env::set_var("RN_THREADS", "0");
        assert!(default_threads() >= 1);
        std::env::set_var("RN_THREADS", "lots");
        assert!(default_threads() >= 1);

        match saved {
            Some(v) => std::env::set_var("RN_THREADS", v),
            None => std::env::remove_var("RN_THREADS"),
        }
    }
}
