//! Aggregate statistics computed from an execution [`Trace`].
//!
//! The experiments report these alongside the round counts: number of
//! transmissions, collisions, and total/maximum message size in bits. They
//! quantify the paper's remarks about message sizes (algorithm B needs only
//! the source message and a constant-size "stay" word; B_ack appends an
//! O(log n)-bit round number).

use crate::message::RadioMessage;
use crate::trace::{NodeEvent, Trace};

/// Aggregate statistics of one execution.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExecutionStats {
    /// Number of rounds in the trace.
    pub rounds: u64,
    /// Total number of transmissions over all rounds.
    pub transmissions: usize,
    /// Total number of successful receptions.
    pub receptions: usize,
    /// Total number of (node, round) pairs at which a collision occurred.
    pub collisions: usize,
    /// Number of rounds in which nobody transmitted.
    pub silent_rounds: u64,
    /// Maximum number of simultaneous transmitters in any round.
    pub max_transmitters_per_round: usize,
    /// Total number of bits transmitted.
    pub total_bits: usize,
    /// Largest single message, in bits.
    pub max_message_bits: usize,
}

impl ExecutionStats {
    /// Computes statistics from a trace.
    pub fn from_trace<M: RadioMessage>(trace: &Trace<M>) -> Self {
        let mut stats = ExecutionStats {
            rounds: trace.len() as u64,
            ..Default::default()
        };
        for round in &trace.rounds {
            let mut tx_this_round = 0usize;
            for event in &round.events {
                match event {
                    NodeEvent::Transmitted(m) => {
                        tx_this_round += 1;
                        stats.transmissions += 1;
                        let bits = m.bit_size();
                        stats.total_bits += bits;
                        stats.max_message_bits = stats.max_message_bits.max(bits);
                    }
                    NodeEvent::Heard { .. } => stats.receptions += 1,
                    NodeEvent::Collision { .. } => stats.collisions += 1,
                    // Fault markers are harness bookkeeping, not protocol
                    // traffic: a jammer transmits no protocol bits and a
                    // dropped reception is not a reception. Robustness
                    // accounting lives in the run reports, not here.
                    NodeEvent::Silence | NodeEvent::Faulted(_) => {}
                }
            }
            if tx_this_round == 0 {
                stats.silent_rounds += 1;
            }
            stats.max_transmitters_per_round = stats.max_transmitters_per_round.max(tx_this_round);
        }
        stats
    }

    /// Computes statistics from the deterministic run counters aggregated by
    /// a [`rn_telemetry::CounterSink`] installed on the simulator.
    ///
    /// This is the counter-backed twin of [`ExecutionStats::from_trace`]: when
    /// a sink ran, the per-round counters carry exactly the quantities the
    /// trace walk would derive (protocol transmissions only — jammers and
    /// fault markers excluded), so the two constructors agree field for field
    /// even on runs executed with tracing disabled.
    pub fn from_counters(counters: &rn_telemetry::RunCounters) -> Self {
        ExecutionStats {
            rounds: counters.rounds,
            transmissions: counters.transmissions as usize,
            receptions: counters.deliveries as usize,
            collisions: counters.collisions as usize,
            silent_rounds: counters.silent_rounds,
            max_transmitters_per_round: counters.max_transmitters_per_round as usize,
            total_bits: counters.total_bits as usize,
            max_message_bits: counters.max_message_bits as usize,
        }
    }

    /// Average transmissions per round (0.0 for an empty trace).
    pub fn avg_transmissions_per_round(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.transmissions as f64 / self.rounds as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::RoundRecord;

    fn trace() -> Trace<u64> {
        Trace {
            rounds: vec![
                RoundRecord {
                    round: 1,
                    events: vec![
                        NodeEvent::Transmitted(9),
                        NodeEvent::Heard {
                            from: 0,
                            message: 9,
                        },
                        NodeEvent::Silence,
                    ],
                },
                RoundRecord {
                    round: 2,
                    events: vec![
                        NodeEvent::Transmitted(255),
                        NodeEvent::Transmitted(1),
                        NodeEvent::Collision {
                            transmitting_neighbors: 2,
                        },
                    ],
                },
                RoundRecord {
                    round: 3,
                    events: vec![NodeEvent::Silence, NodeEvent::Silence, NodeEvent::Silence],
                },
            ],
        }
    }

    #[test]
    fn stats_from_trace() {
        let s = ExecutionStats::from_trace(&trace());
        assert_eq!(s.rounds, 3);
        assert_eq!(s.transmissions, 3);
        assert_eq!(s.receptions, 1);
        assert_eq!(s.collisions, 1);
        assert_eq!(s.silent_rounds, 1);
        assert_eq!(s.max_transmitters_per_round, 2);
        assert_eq!(s.total_bits, 4 + 8 + 1);
        assert_eq!(s.max_message_bits, 8);
        assert!((s.avg_transmissions_per_round() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stats_from_counters_mirrors_every_field() {
        let counters = rn_telemetry::RunCounters {
            rounds: 3,
            transmitters: 4,
            transmissions: 3,
            deliveries: 1,
            collisions: 1,
            rx_faults: 0,
            silent_rounds: 1,
            max_transmitters_per_round: 2,
            total_bits: 13,
            max_message_bits: 8,
            frontier_peak: 3,
            elided_rounds: 0,
            elided_spans: 0,
            scratch_reused: 0,
            scratch_fresh: 1,
        };
        assert_eq!(
            ExecutionStats::from_counters(&counters),
            ExecutionStats::from_trace(&trace())
        );
    }

    #[test]
    fn stats_of_empty_trace() {
        let s = ExecutionStats::from_trace(&Trace::<u64>::new());
        assert_eq!(s, ExecutionStats::default());
        assert_eq!(s.avg_transmissions_per_round(), 0.0);
    }
}
