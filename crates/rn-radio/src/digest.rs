//! Tiny deterministic state-digest helpers behind
//! [`RadioNode::state_digest`](crate::RadioNode::state_digest).
//!
//! A protocol node folds each of its fields into a [`Digest`] and returns
//! the finished value; the model checker compares digests across a
//! replayed elision span to prove the wake-hint frozen-state contract.
//! The mixer is SplitMix64 — not cryptographic, but with 64-bit output and
//! the handful of states a protocol node reaches in a bounded run,
//! accidental collisions are never an issue in practice, and the function
//! is endian- and platform-independent.

/// An accumulating 64-bit state digest (SplitMix64 mixing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Digest(u64);

impl Digest {
    /// Starts a digest seeded by a per-type tag (any constant; distinct
    /// protocols should use distinct tags so identical field values in
    /// different protocols do not collide).
    #[must_use]
    pub fn new(tag: u64) -> Self {
        Digest(mix(tag ^ 0x9e37_79b9_7f4a_7c15))
    }

    /// Folds one 64-bit word into the digest.
    #[must_use]
    pub fn word(self, w: u64) -> Self {
        Digest(mix(self.0.rotate_left(23) ^ w))
    }

    /// Folds a boolean.
    #[must_use]
    pub fn flag(self, b: bool) -> Self {
        self.word(u64::from(b))
    }

    /// Folds an `Option<u64>`-shaped field, keeping `None` distinct from
    /// any `Some` value.
    #[must_use]
    pub fn opt(self, v: Option<u64>) -> Self {
        match v {
            None => self.word(0x6e6f_6e65), // "none"
            Some(x) => self.word(1).word(x),
        }
    }

    /// Folds a slice of words, length included (so `[1]` and `[1, 0]`
    /// differ).
    #[must_use]
    pub fn words(self, ws: &[u64]) -> Self {
        let mut d = self.word(ws.len() as u64);
        for &w in ws {
            d = d.word(w);
        }
        d
    }

    /// The finished digest value.
    #[must_use]
    pub fn finish(self) -> u64 {
        mix(self.0)
    }
}

/// The SplitMix64 finalizer.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digests_are_deterministic_and_order_sensitive() {
        let a = Digest::new(1).word(2).word(3).finish();
        let b = Digest::new(1).word(2).word(3).finish();
        let c = Digest::new(1).word(3).word(2).finish();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn none_differs_from_any_small_some() {
        let none = Digest::new(7).opt(None).finish();
        for x in 0..100 {
            assert_ne!(none, Digest::new(7).opt(Some(x)).finish());
        }
    }

    #[test]
    fn tags_separate_identical_field_sets() {
        assert_ne!(
            Digest::new(1).flag(true).finish(),
            Digest::new(2).flag(true).finish()
        );
    }

    #[test]
    fn slice_length_is_folded() {
        assert_ne!(
            Digest::new(1).words(&[1]).finish(),
            Digest::new(1).words(&[1, 0]).finish()
        );
    }
}
