//! The [`RadioNode`] trait: the interface a distributed algorithm implements
//! to run on the simulator.
//!
//! The interface is deliberately minimal and enforces the paper's knowledge
//! model: a node is constructed from its label (and, for the source, the
//! source message) by the algorithm crate, and afterwards the simulator only
//! ever calls [`RadioNode::step`] ("what do you do this round?") and
//! [`RadioNode::receive`] ("this is what you heard"). No global information —
//! not the round number, not the topology, not the network size — ever flows
//! from the simulator into a node.

use crate::message::RadioMessage;

/// What a node does in one round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action<M> {
    /// Transmit the given message to all neighbours.
    Transmit(M),
    /// Stay silent and listen.
    Listen,
}

impl<M> Action<M> {
    /// Whether this action is a transmission.
    #[inline]
    pub fn is_transmit(&self) -> bool {
        matches!(self, Action::Transmit(_))
    }

    /// The transmitted message, if any.
    #[inline]
    pub fn message(&self) -> Option<&M> {
        match self {
            Action::Transmit(m) => Some(m),
            Action::Listen => None,
        }
    }
}

/// A node of the radio network running a deterministic distributed algorithm.
///
/// The simulator drives each node through the same two calls every round, in
/// this order:
///
/// 1. [`step`](RadioNode::step) — the node decides to transmit or listen,
///    based only on its internal state (label + history);
/// 2. [`receive`](RadioNode::receive) — **only if the node listened**, it is
///    told what it heard: `Some(msg)` if exactly one neighbour transmitted,
///    `None` otherwise (silence and collision are indistinguishable, as the
///    model has no collision detection).
///
/// Transmitting nodes get no feedback at all for that round.
pub trait RadioNode {
    /// The message type this protocol exchanges.
    type Msg: RadioMessage;

    /// Decide this round's action.
    fn step(&mut self) -> Action<Self::Msg>;

    /// Observe the outcome of a listening round.
    fn receive(&mut self, heard: Option<&Self::Msg>);

    /// How many upcoming rounds this node is guaranteed to be *dormant*,
    /// as a hint to the event-driven engine
    /// ([`Engine::EventDriven`](crate::Engine)).
    ///
    /// Returning `h` promises that — unless a decodable message is
    /// delivered to the node first — each of its next `h` [`step`] calls
    /// would return [`Action::Listen`], and that skipping those `h`
    /// `step`/`receive(None)` call pairs leaves the node in exactly the
    /// state it would reach if they were made (its state is *frozen*:
    /// `step` and `receive(None)` are no-ops for those rounds). The
    /// engine may then elide the calls entirely and only wake the node
    /// early when it hears something (`receive(Some(_))`), after which
    /// the hint is queried again. `u64::MAX` means "dormant until I hear
    /// something".
    ///
    /// The default of `0` makes no promise at all — the node is driven
    /// every round, exactly like the per-round engines drive it — so any
    /// protocol is correct without implementing this. Override it only
    /// where the frozen-state contract genuinely holds; the three-engine
    /// equivalence suite will catch a hint that overpromises.
    ///
    /// [`step`]: RadioNode::step
    fn wake_hint(&self) -> u64 {
        0
    }

    /// A digest of the node's complete observable state, used by the
    /// bounded model checker (`rn-modelcheck`) to verify the
    /// [`wake_hint`](RadioNode::wake_hint) frozen-state contract: the
    /// checker replays the elided `step`/`receive(None)` pairs against a
    /// clone and requires the digest to stay bit-identical.
    ///
    /// Implementations must fold **every** field that influences future
    /// behaviour (the helpers in [`crate::digest`] make this a one-liner),
    /// and must be deterministic functions of that state alone — no
    /// addresses, no interior mutability. The default of `0` opts out:
    /// the checker still verifies Listen-only actions for such nodes but
    /// cannot see state drift. Protocols that implement
    /// [`wake_hint`](RadioNode::wake_hint) should always implement this
    /// too.
    fn state_digest(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_accessors() {
        let t: Action<u64> = Action::Transmit(5);
        let l: Action<u64> = Action::Listen;
        assert!(t.is_transmit());
        assert!(!l.is_transmit());
        assert_eq!(t.message(), Some(&5));
        assert_eq!(l.message(), None);
    }
}
