//! Shared test-support protocols (behind the `testing` feature).
//!
//! The equivalence and fault suites both need an adversarial protocol that
//! stresses the simulator with dense, pseudo-random collision patterns no
//! real labeling scheme would produce. [`ChaosNode`] used to live inside
//! `tests/engine_equivalence.rs`; it is promoted here so every test crate
//! (and downstream experiments) can drive the same adversary without
//! duplicating it. Nothing in this module is compiled into production
//! builds — enable it with the `testing` cargo feature (dev-dependencies
//! in this workspace do) or via `cfg(test)` inside `rn-radio` itself.

use crate::node::{Action, RadioNode};

/// An adversarial protocol for raw-simulator testing: each node transmits on
/// a pseudo-random schedule derived from its id and how many rounds it has
/// seen, producing dense collision patterns no real scheme would. The
/// per-node state advances on *observations* only (the simulator never leaks
/// the round number), exactly like a real protocol — which also means an
/// injected fault that suppresses a `receive` call visibly desynchronizes
/// the node, making `ChaosNode` a sharp probe for fault-injection
/// equivalence across engines.
#[derive(Clone, Debug)]
pub struct ChaosNode {
    id: u64,
    local_round: u64,
    /// Fires roughly every `1/density` rounds.
    density: u64,
    /// Everything this node observed, in order (`None` = silence/collision).
    pub observations: Vec<Option<u64>>,
}

impl ChaosNode {
    /// One node per graph vertex, all with the same transmit `density`.
    pub fn network(n: usize, density: u64) -> Vec<ChaosNode> {
        (0..n)
            .map(|id| ChaosNode {
                id: id as u64,
                local_round: 0,
                density,
                observations: Vec::new(),
            })
            .collect()
    }

    /// SplitMix64 — deterministic, seeded by (id, local_round).
    fn hash(&self) -> u64 {
        let mut z = self
            .id
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.local_round.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl RadioNode for ChaosNode {
    type Msg = u64;

    fn step(&mut self) -> Action<u64> {
        let fire = self.hash().is_multiple_of(self.density);
        self.local_round += 1;
        if fire {
            Action::Transmit(self.id * 1000 + self.local_round)
        } else {
            Action::Listen
        }
    }

    fn receive(&mut self, heard: Option<&u64>) {
        self.observations.push(heard.copied());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_schedule_is_deterministic() {
        let mut a = ChaosNode::network(4, 3);
        let mut b = ChaosNode::network(4, 3);
        for _ in 0..32 {
            for (x, y) in a.iter_mut().zip(b.iter_mut()) {
                assert_eq!(x.step().is_transmit(), y.step().is_transmit());
            }
        }
    }

    #[test]
    fn chaos_network_mixes_transmitters_and_listeners() {
        let mut nodes = ChaosNode::network(16, 2);
        let mut transmits = 0usize;
        let mut listens = 0usize;
        for _ in 0..32 {
            for node in &mut nodes {
                if node.step().is_transmit() {
                    transmits += 1;
                } else {
                    listens += 1;
                }
            }
        }
        assert!(transmits > 0 && listens > 0);
    }
}
