//! Software-Defined-Network scenario from the paper's introduction (§1.2):
//! a central SDN controller assigns each forwarding device a *role* — here,
//! one of the at most six 3-bit λ_arb labels — so that broadcast works **no
//! matter which device later originates the traffic**.
//!
//! The example compares the number of distinct roles needed by the paper's
//! scheme against the identifier-based baseline, and then demonstrates the
//! unknown-source algorithm B_arb from several different origins — all
//! through one session whose cached λ_arb labeling serves every origin, with
//! the independent runs fanned out over worker threads by `run_batch`.
//!
//! ```text
//! cargo run --example sdn_roles
//! ```

use radio_labeling::broadcast::session::{RunSpec, Scheme, Session};
use radio_labeling::graph::generators;
use radio_labeling::labeling::baselines;
use radio_labeling::radio::batch;
use std::collections::BTreeMap;

fn main() {
    // A leaf/spine-like fabric approximated by a dense random network.
    let fabric = generators::gnp_connected(40, 0.15, 2024).expect("valid parameters");
    println!(
        "fabric: {} switches, {} links, max degree {}",
        fabric.node_count(),
        fabric.edge_count(),
        fabric.max_degree()
    );

    // Role assignment by the controller: λ_arb needs no knowledge of the
    // future traffic source, so one session serves every origin.
    let coordinator = 0;
    let session = Session::builder(Scheme::LambdaArb, fabric)
        .coordinator(coordinator)
        .build()
        .expect("fabric is connected");
    let mut role_census: BTreeMap<String, usize> = BTreeMap::new();
    for v in session.graph().nodes() {
        *role_census
            .entry(session.labeling().get(v).to_string())
            .or_default() += 1;
    }
    println!("\nroles assigned by lambda_arb (role -> number of switches):");
    for (role, count) in &role_census {
        println!("  {role}: {count}");
    }
    println!(
        "=> {} distinct roles of {} bits each; coordinator switch is {}",
        role_census.len(),
        session.labeling().length(),
        coordinator
    );

    let ids = baselines::unique_ids(session.graph()).expect("fabric is connected");
    println!(
        "baseline with unique identifiers would need {} distinct roles of {} bits each",
        ids.distinct_count(),
        ids.length()
    );

    // Broadcast from several different origins with the same role assignment.
    // The origins are independent runs, so fan them out in parallel.
    println!("\nbroadcast from different origins (labels never change):");
    let specs: Vec<RunSpec> = [3usize, 17, 29, 39]
        .into_iter()
        .map(|origin| RunSpec::new(origin, 0xACE0 + origin as u64))
        .collect();
    let reports = session
        .run_batch(&specs, batch::default_threads())
        .expect("origins are in range");
    for report in &reports {
        println!(
            "  origin {:>2}: every switch informed by round {}, knows completion by round {}",
            report.source,
            report.completion_round.expect("B_arb completes"),
            report
                .common_knowledge_round
                .expect("B_arb reaches common knowledge"),
        );
    }
    // The first origin again in paragraph form, via the report's Display.
    println!("\nin short: {}", reports[0]);
}
