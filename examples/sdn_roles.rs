//! Software-Defined-Network scenario from the paper's introduction (§1.2):
//! a central SDN controller assigns each forwarding device a *role* — here,
//! one of the at most six 3-bit λ_arb labels — so that broadcast works **no
//! matter which device later originates the traffic**.
//!
//! The example compares the number of distinct roles needed by the paper's
//! scheme against the identifier-based baseline, and then demonstrates the
//! unknown-source algorithm B_arb from several different origins.
//!
//! ```text
//! cargo run --example sdn_roles
//! ```

use radio_labeling::broadcast::runner;
use radio_labeling::graph::generators;
use radio_labeling::labeling::{baselines, lambda_arb};
use std::collections::BTreeMap;

fn main() {
    // A leaf/spine-like fabric approximated by a dense random network.
    let fabric = generators::gnp_connected(40, 0.15, 2024).expect("valid parameters");
    println!(
        "fabric: {} switches, {} links, max degree {}",
        fabric.node_count(),
        fabric.edge_count(),
        fabric.max_degree()
    );

    // Role assignment by the controller: λ_arb needs no knowledge of the
    // future traffic source.
    let scheme = lambda_arb::construct(&fabric).expect("fabric is connected");
    let mut role_census: BTreeMap<String, usize> = BTreeMap::new();
    for v in fabric.nodes() {
        *role_census
            .entry(scheme.labeling().get(v).to_string())
            .or_default() += 1;
    }
    println!("\nroles assigned by lambda_arb (role -> number of switches):");
    for (role, count) in &role_census {
        println!("  {role}: {count}");
    }
    println!(
        "=> {} distinct roles of {} bits each; coordinator switch is {}",
        role_census.len(),
        scheme.labeling().length(),
        scheme.r()
    );

    let ids = baselines::unique_ids(&fabric).expect("fabric is connected");
    println!(
        "baseline with unique identifiers would need {} distinct roles of {} bits each",
        ids.distinct_count(),
        ids.length()
    );

    // Broadcast from several different origins with the same role assignment.
    println!("\nbroadcast from different origins (labels never change):");
    for origin in [3, 17, 29, 39] {
        let result = runner::run_arbitrary_source(&fabric, scheme.r(), origin, 0xACE0 + origin as u64)
            .expect("fabric is connected");
        println!(
            "  origin {origin:>2}: every switch informed by round {}, knows completion by round {}",
            result
                .completion_round
                .expect("B_arb completes"),
            result
                .common_knowledge_round
                .expect("B_arb reaches common knowledge"),
        );
    }
}
