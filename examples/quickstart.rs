//! Quickstart: label a radio network with the paper's 2-bit scheme λ and run
//! the universal broadcast algorithm B on it, through the unified session
//! API.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use radio_labeling::broadcast::session::{Scheme, Session};
use radio_labeling::graph::{dot, generators};

fn main() {
    // A 4x5 grid radio network with the source in a corner.
    let network = generators::grid(4, 5);
    let source = 0;
    let message = 0xBEEF;
    let n = network.node_count();

    // 1. The central monitor labels the network (2 bits per node). Building
    //    the session constructs the labeling once; every run reuses it.
    let session = Session::builder(Scheme::Lambda, network)
        .source(source)
        .message(message)
        .build()
        .expect("the grid is connected");
    println!("labels assigned by lambda (node: label):");
    for v in session.graph().nodes() {
        print!("  {v}:{}", session.labeling().get(v));
        if (v + 1) % 5 == 0 {
            println!();
        }
    }
    println!();
    println!(
        "scheme length = {} bits, {} distinct labels\n",
        session.labeling().length(),
        session.labeling().distinct_count()
    );

    // 2. The nodes — which know nothing about the topology — run algorithm B.
    //    The report's Display impl is the one-paragraph human summary.
    let result = session.run();
    println!("{result}");
    assert_eq!(result.theorem_bound(), Some(2 * n as u64 - 3));
    println!(
        "total transmissions: {}, collisions: {}, max message size: {} bits",
        result.stats.transmissions, result.stats.collisions, result.stats.max_message_bits
    );

    // 3. Per-node informed rounds (the wave front).
    println!("\ninformed round per node (source = 0):");
    for (v, round) in result.informed_rounds.iter().enumerate() {
        print!("  {v}:{}", round.map_or("-".into(), |r| r.to_string()));
        if (v + 1) % 5 == 0 {
            println!();
        }
    }
    println!();

    // 4. A DOT rendering to eyeball the labeled network.
    println!("\nGraphviz DOT of the labeled network:\n");
    println!(
        "{}",
        dot::to_dot(session.graph(), Some(&session.labeling().as_strings()))
    );
}
