//! Scheme comparison on a single network: how the paper's constant-length
//! schemes stack up against the folklore baselines of §1.1, on the same
//! topology and source.
//!
//! Every scheme runs through the same [`Session`] API; the network is built
//! once and shared by all sessions.
//!
//! ```text
//! cargo run --example scheme_comparison
//! ```

use radio_labeling::broadcast::session::{RunReport, Scheme, Session};
use radio_labeling::graph::generators;
use std::sync::Arc;

fn describe(name: &str, r: &RunReport) {
    println!(
        "  {name:<16} label bits: {:>2}   distinct labels: {:>3}   completion round: {:>5}   \
         transmissions: {:>5}   largest message: {:>2} bits",
        r.label_length,
        r.distinct_labels,
        r.completion_round
            .map_or("-".to_string(), |c| c.to_string()),
        r.stats.transmissions,
        r.stats.max_message_bits,
    );
}

fn main() {
    // A barbell network: two dense clusters joined by a thin bridge — the
    // kind of topology where collisions at the bridge hurt naive flooding.
    let network = Arc::new(generators::barbell(12, 4));
    let source = 0;
    println!(
        "network: barbell with {} nodes, {} edges, max degree {}\n",
        network.node_count(),
        network.edge_count(),
        network.max_degree()
    );

    let run = |scheme| {
        Session::builder(scheme, Arc::clone(&network))
            .source(source)
            .message(7)
            .build()
            .expect("connected")
            .run()
    };
    let lambda = run(Scheme::Lambda);
    let ids = run(Scheme::UniqueIds);
    let colors = run(Scheme::SquareColoring);

    println!("plain broadcast:");
    describe("lambda (2-bit)", &lambda);
    describe("unique ids", &ids);
    describe("square coloring", &colors);

    let ack = run(Scheme::LambdaAck);
    println!("\nacknowledged broadcast (lambda_ack, 3-bit labels):");
    describe("lambda_ack", &ack);
    println!(
        "  source learned of completion in round {} (broadcast finished in round {})",
        ack.ack_round.expect("ack arrives"),
        ack.completion_round.expect("completes"),
    );

    println!(
        "\nTheorem 2.9 bound for this network: 2n-3 = {} rounds; every algorithm above that \
         completed within its own guarantee did so deterministically, with no collision detection.",
        lambda
            .theorem_bound()
            .expect("lambda has a closed-form bound")
    );

    // The same verdict in one paragraph, via the report's Display impl.
    println!("\nin short: {lambda}");
}
