//! Scheme comparison on a single network: how the paper's constant-length
//! schemes stack up against the folklore baselines of §1.1, on the same
//! topology and source.
//!
//! ```text
//! cargo run --example scheme_comparison
//! ```

use radio_labeling::broadcast::runner::{
    run_broadcast, run_coloring_broadcast, run_unique_id_broadcast, BroadcastResult,
};
use radio_labeling::broadcast::runner::run_acknowledged_broadcast;
use radio_labeling::graph::generators;

fn describe(name: &str, r: &BroadcastResult) {
    println!(
        "  {name:<16} label bits: {:>2}   distinct labels: {:>3}   completion round: {:>5}   \
         transmissions: {:>5}   largest message: {:>2} bits",
        r.label_length,
        r.distinct_labels,
        r.completion_round
            .map_or("-".to_string(), |c| c.to_string()),
        r.stats.transmissions,
        r.stats.max_message_bits,
    );
}

fn main() {
    // A barbell network: two dense clusters joined by a thin bridge — the
    // kind of topology where collisions at the bridge hurt naive flooding.
    let network = generators::barbell(12, 4);
    let source = 0;
    println!(
        "network: barbell with {} nodes, {} edges, max degree {}\n",
        network.node_count(),
        network.edge_count(),
        network.max_degree()
    );

    let lambda = run_broadcast(&network, source, 7).expect("connected");
    let ids = run_unique_id_broadcast(&network, source, 7).expect("connected");
    let colors = run_coloring_broadcast(&network, source, 7).expect("connected");

    println!("plain broadcast:");
    describe("lambda (2-bit)", &lambda);
    describe("unique ids", &ids);
    describe("square coloring", &colors);

    let ack = run_acknowledged_broadcast(&network, source, 7).expect("connected");
    println!("\nacknowledged broadcast (lambda_ack, 3-bit labels):");
    describe("lambda_ack", &ack.broadcast);
    println!(
        "  source learned of completion in round {} (broadcast finished in round {})",
        ack.ack_round.expect("ack arrives"),
        ack.broadcast.completion_round.expect("completes"),
    );

    let n = network.node_count();
    println!(
        "\nTheorem 2.9 bound for this network: 2n-3 = {} rounds; every algorithm above that \
         completed within its own guarantee did so deterministically, with no collision detection.",
        2 * n - 3
    );
}
