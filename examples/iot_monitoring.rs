//! IoT monitoring scenario from the paper's introduction (§1.2): a business
//! complex has already deployed simple radio devices; only a central monitor
//! knows their positions and transmission ranges. One gateway node must
//! broadcast **many consecutive firmware/configuration messages**, and must
//! know when each one has reached everyone before sending the next.
//!
//! The monitor assigns the 3-bit λ_ack labels once — building the session
//! constructs the labeling a single time — and afterwards the devices, which
//! have only a few bits of configuration memory and no topology knowledge,
//! repeatedly run the acknowledged broadcast B_ack: one `run_with_message`
//! per update against the same cached labeling and shared graph.
//!
//! ```text
//! cargo run --example iot_monitoring
//! ```

use radio_labeling::broadcast::session::{Scheme, Session};
use radio_labeling::graph::{algorithms, generators, Graph};

/// Builds the deployment: a warehouse floor modelled as a grid of shelving
/// aisles plus a few long-range links back to the gateway.
fn deployment() -> (Graph, usize) {
    let floor = generators::grid(6, 8);
    // The gateway sits at node 0; add a couple of long-range links the site
    // survey discovered (metal shelving creates odd propagation paths).
    let g = floor
        .with_extra_edges(&[(0, 21), (0, 37)])
        .expect("extra links are new");
    (g, 0)
}

fn main() {
    let (network, gateway) = deployment();
    println!(
        "deployment: {} devices, {} radio links, max degree {}, diameter {:?}",
        network.node_count(),
        network.edge_count(),
        network.max_degree(),
        algorithms::diameter(&network)
    );
    let n = network.node_count() as u64;

    // One-time labeling by the central monitor: build the session once.
    let session = Session::builder(Scheme::LambdaAck, network)
        .source(gateway)
        .build()
        .expect("deployment is connected");
    let labeling = session.labeling();
    let ack_initiator = session
        .graph()
        .nodes()
        .find(|&v| labeling.get(v).x3())
        .expect("lambda_ack marks one initiator");
    println!(
        "monitor assigned {}-bit labels ({} distinct values); acknowledgement initiator is device {}",
        labeling.length(),
        labeling.distinct_count(),
        ack_initiator
    );

    // The gateway pushes a sequence of configuration messages; each one is
    // only sent after the previous one was acknowledged. Every push reuses
    // the cached labeling — no per-update scheme reconstruction.
    let updates: Vec<u64> = (1..=5).map(|i| 0x1000 + i).collect();
    let mut total_rounds = 0u64;
    let mut last_report = None;
    for (i, &update) in updates.iter().enumerate() {
        let result = session.run_with_message(update).expect("broadcast runs");
        let completion = result.completion_round.expect("B_ack informs every device");
        let ack = result.ack_round.expect("the gateway hears the ack");
        total_rounds += ack;
        println!(
            "update {:#06x} ({} of {}): every device informed by round {completion}, gateway \
             acknowledged at round {ack} ({} transmissions, largest message {} bits)",
            update,
            i + 1,
            updates.len(),
            result.stats.transmissions,
            result.stats.max_message_bits,
        );
        last_report = Some(result);
    }
    // The per-run paragraph an operator would log, via the report's Display.
    println!("\nlast update in short: {}", last_report.expect("ran"));
    println!(
        "\npushed {} updates in {} radio rounds total; per-update worst-case bound is 2n-3 + n-1 = {}",
        updates.len(),
        total_rounds,
        3 * n - 4
    );
}
