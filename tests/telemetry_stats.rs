//! Differential check of the deterministic run counters: on every
//! [`TopologyFamily`] preset and every general scheme, the counters a
//! [`CounterSink`](radio_labeling::radio::CounterSink) aggregates during an
//! instrumented run must reproduce the trace-derived [`ExecutionStats`]
//! field for field. The counters are assembled incrementally inside the
//! engines' hot paths; the trace walk recomputes the same quantities from
//! the recorded events — agreement on the full topology × scheme matrix
//! pins the two derivations to each other.

use radio_labeling::broadcast::session::{Scheme, Session};
use radio_labeling::graph::generators::TopologyFamily;
use radio_labeling::radio::ExecutionStats;
use std::sync::Arc;

const N: usize = 16;
const SEED: u64 = 1;

#[test]
fn counters_equal_trace_derived_stats_on_every_preset_and_general_scheme() {
    for family in TopologyFamily::PRESETS {
        let graph = Arc::new(
            family
                .generate(N, SEED)
                .unwrap_or_else(|e| panic!("{}: {e}", family.name())),
        );
        for scheme in Scheme::GENERAL {
            let session = Session::builder(scheme, Arc::clone(&graph))
                .build()
                .unwrap_or_else(|e| panic!("{}/{}: {e}", family.name(), scheme.name()));
            let (report, metrics) = session.run_instrumented();
            let counters = metrics
                .counters
                .unwrap_or_else(|| panic!("{}/{}: no counters", family.name(), scheme.name()));
            assert_eq!(
                ExecutionStats::from_counters(&counters),
                report.stats,
                "{}/{}: counter-derived stats diverge from the trace walk",
                family.name(),
                scheme.name()
            );
            assert_eq!(
                metrics.counters_match_trace,
                Some(true),
                "{}/{}",
                family.name(),
                scheme.name()
            );
        }
    }
}
