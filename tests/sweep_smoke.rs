//! End-to-end smoke test for the scenario sweep subsystem: the named
//! `smoke` sweep (the one CI runs through the `sweep` binary) must execute
//! every family, complete broadcast everywhere, and emit well-formed
//! JSON/CSV.

use radio_labeling::experiments::emit;
use radio_labeling::experiments::scenario;
use radio_labeling::experiments::scenario::SweepRecord;

#[test]
fn named_smoke_sweep_runs_end_to_end_and_emits_reports() {
    let spec = scenario::named("smoke")
        .expect("smoke sweep exists")
        .quick();
    assert!(spec.families.len() >= 6, "smoke must cover >= 6 families");
    let report = spec.run().expect("smoke sweep runs cleanly");

    // Every family appears, every run completes with λ's 2-bit labels.
    let families: std::collections::BTreeSet<&str> =
        report.records.iter().map(|r| r.family).collect();
    assert_eq!(families.len(), spec.families.len());
    assert!(report.records.iter().all(SweepRecord::completed));
    assert!(report.records.iter().all(|r| r.label_length == 2));
    // Theorem 2.9: completion within 2n - 3 rounds on every topology.
    for r in &report.records {
        let bound = 2 * r.n as u64 - 3;
        assert!(
            r.completion_round.unwrap() <= bound,
            "{}: completed in {} > 2n-3 = {bound}",
            r.family,
            r.completion_round.unwrap()
        );
    }

    let json = emit::to_json(&report);
    assert!(json.contains("\"sweep\": \"smoke\""));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    let csv = emit::to_csv(&report);
    assert_eq!(csv.lines().count(), 1 + report.records.len());
}

#[test]
fn sweep_reports_are_deterministic_across_thread_counts() {
    let one = scenario::named("smoke").unwrap().quick().threads(1);
    let four = scenario::named("smoke").unwrap().quick().threads(4);
    let a = one.run().unwrap();
    let b = four.run().unwrap();
    assert_eq!(a.records, b.records);
    assert_eq!(emit::to_json(&a), emit::to_json(&b));
}

#[test]
fn multi_sweep_quick_is_byte_identical_across_thread_counts() {
    // The acceptance bar for the multi-broadcast subsystem: the named
    // `multi` sweep in --quick mode produces byte-identical JSON and CSV
    // whether it runs on 1 or 4 worker threads.
    let one = scenario::named("multi").unwrap().quick().threads(1);
    let four = scenario::named("multi").unwrap().quick().threads(4);
    let a = one.run().expect("multi sweep runs cleanly");
    let b = four.run().unwrap();
    assert!(!a.records.is_empty());
    assert!(a.records.iter().all(SweepRecord::completed));
    assert_eq!(a.records, b.records);
    assert_eq!(emit::to_json(&a), emit::to_json(&b));
    assert_eq!(emit::to_csv(&a), emit::to_csv(&b));
    // The emitted JSON carries the per-message completion columns.
    assert!(emit::to_json(&a).contains("\"message_completion_rounds\""));
}

#[test]
fn gossip_sweep_quick_is_byte_identical_across_thread_counts() {
    // The acceptance bar for the gossip subsystem mirrors the multi one:
    // the named `gossip` sweep in --quick mode produces byte-identical JSON
    // and CSV whether it runs on 1 or 4 worker threads.
    let one = scenario::named("gossip").unwrap().quick().threads(1);
    let four = scenario::named("gossip").unwrap().quick().threads(4);
    let a = one.run().expect("gossip sweep runs cleanly");
    let b = four.run().unwrap();
    assert!(!a.records.is_empty());
    assert!(a.records.iter().all(SweepRecord::completed));
    // Every node is a source: the existing k_sources / per-message columns
    // carry the n-message shape.
    assert!(a.records.iter().all(|r| r.k_sources == r.n));
    assert!(a
        .records
        .iter()
        .all(|r| r.message_completion_rounds.len() == r.n));
    assert_eq!(a.records, b.records);
    assert_eq!(emit::to_json(&a), emit::to_json(&b));
    assert_eq!(emit::to_csv(&a), emit::to_csv(&b));
}
