//! Property tests for the static analyzer (`rn-analyze`) over every
//! topology registry preset and every general scheme.
//!
//! Two contracts are hunted for counterexamples here:
//!
//! 1. **Exactness** — on a well-formed labeling, the analyzer's symbolic
//!    schedule derivation predicts the *exact* simulated timeline:
//!    `analyze_and_cross_check` must certify every preset × scheme point,
//!    which implies predicted completion == simulated completion
//!    byte-for-byte (the cross-check diffs every predicted column).
//! 2. **Fault detection** — a seeded single-label corruption must come back
//!    as a *located* [`Finding`] (one that names a node), never a panic and
//!    never a silent pass. The corruption strategies mirror the `analyze`
//!    binary's `--corrupt` mode.

use proptest::prelude::*;
use radio_labeling::analyze::{analyze_and_cross_check, certify_labeled, Finding};
use radio_labeling::broadcast::session::{Scheme, Session};
use radio_labeling::graph::generators::TopologyFamily;
use radio_labeling::graph::Graph;
use radio_labeling::labeling::label::{Label, Labeling};
use std::sync::Arc;

/// Strategy: a preset family index, a size, a seed, and a general-scheme
/// index — every (preset, scheme) pair is reachable.
fn analysis_point() -> impl Strategy<Value = (usize, usize, u64, usize)> {
    (
        0usize..TopologyFamily::PRESETS.len(),
        6usize..=32,
        any::<u64>(),
        0usize..Scheme::GENERAL.len(),
    )
}

fn generate(idx: usize, n: usize, seed: u64) -> Graph {
    TopologyFamily::PRESETS[idx]
        .generate(n, seed)
        .expect("presets generate for every n >= 4")
}

/// Seeds one deterministic label corruption appropriate to the scheme
/// (mirrors the `analyze --corrupt` strategies).
fn corrupt_labeling(session: &Session, graph: &Graph) -> Labeling {
    let mut labels = session.labeling().labels().to_vec();
    let name = session.labeling().scheme();
    match session.scheme() {
        Scheme::UniqueIds => {
            labels[0] = Label::from_value(labels[1].value(), labels[0].len());
        }
        Scheme::SquareColoring => {
            let u = graph.neighbors(0)[0];
            labels[0] = Label::from_value(labels[u].value(), labels[0].len());
        }
        Scheme::LambdaArb | Scheme::MultiLambda { .. } | Scheme::Gossip => {
            let r = session.coordinator();
            labels[r] = Label::from_value(0, labels[r].len());
        }
        _ => {
            let v = (0..labels.len())
                .rev()
                .find(|&v| labels[v].x1())
                .expect("every labeling marks at least the source with x1");
            labels[v] = Label::from_value(0, labels[v].len());
        }
    }
    Labeling::new(labels, name)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn predicted_timeline_matches_simulation_on_every_preset(
        (idx, n, seed, s) in analysis_point()
    ) {
        let scheme = Scheme::GENERAL[s];
        let g = Arc::new(generate(idx, n, seed));
        let session = Session::builder(scheme, Arc::clone(&g)).build().unwrap();
        let report = session.run();
        let cert = analyze_and_cross_check(&session, &report);
        prop_assert!(
            cert.is_ok(),
            "{} n={} {}: {:?}",
            TopologyFamily::PRESETS[idx].name(),
            g.node_count(),
            scheme.name(),
            cert.err()
        );
        let cert = cert.unwrap();
        prop_assert_eq!(cert.completion_round, report.completion_round);
        prop_assert!(cert.completion_round.unwrap() <= cert.round_bound);
    }

    #[test]
    fn corrupted_labelings_yield_located_findings(
        (idx, n, seed, s) in analysis_point()
    ) {
        let scheme = Scheme::GENERAL[s];
        let g = Arc::new(generate(idx, n, seed));
        let session = Session::builder(scheme, Arc::clone(&g)).build().unwrap();
        let corrupted = corrupt_labeling(&session, &g);
        // The analyzer must reject the corruption — never panic, never
        // certify — and at least one finding must name a node.
        let result = certify_labeled(
            scheme,
            &g,
            &corrupted,
            session.source(),
            session.sources(),
            session.coordinator(),
            session.collection_plan(),
        );
        let findings = result.err();
        prop_assert!(
            findings.is_some(),
            "{} n={} {}: corrupted labeling certified",
            TopologyFamily::PRESETS[idx].name(),
            g.node_count(),
            scheme.name()
        );
        let findings = findings.unwrap();
        prop_assert!(
            findings.iter().any(Finding::is_located),
            "{} n={} {}: no located finding in {findings:?}",
            TopologyFamily::PRESETS[idx].name(),
            g.node_count(),
            scheme.name()
        );
    }
}
