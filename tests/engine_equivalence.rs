//! Equivalence suite for the simulator engines.
//!
//! The fast engine rewrote delivery from "every listener scans its
//! neighbourhood" to "every transmitter pushes along its CSR row", and the
//! event-driven engine (`Engine::EventDriven`) further replaces per-round
//! polling with a wake-hint frontier plus silent-round elision; the original
//! algorithm is retained verbatim as `Simulator::step_round_reference`
//! (selected with `Engine::ListenerCentric`). These tests replay seeded
//! topologies under every `Scheme` — and under an adversarial
//! pseudo-random protocol at the raw simulator level — and assert all
//! three engines produce **identical** traces, node observations and
//! `RunReport`s, field for field.

use radio_labeling::broadcast::session::{RunReport, RunSpec, Scheme, Session, TracePolicy};
use radio_labeling::graph::{generators, Graph};
use radio_labeling::radio::testing::ChaosNode;
use radio_labeling::radio::{Engine, FaultPlan, Simulator, StopCondition};
use std::sync::Arc;

/// Every engine the simulator offers, reference first: each alternative
/// engine is compared against `ListenerCentric`, the executable spec.
const ENGINES: [Engine; 3] = [
    Engine::ListenerCentric,
    Engine::TransmitterCentric,
    Engine::EventDriven,
];

/// Seeded workload families: name, graph, and the sources to broadcast from.
fn workloads() -> Vec<(String, Graph, Vec<usize>)> {
    let mut w: Vec<(String, Graph, Vec<usize>)> = vec![
        ("path-17".into(), generators::path(17), vec![0, 8, 16]),
        ("star-13".into(), generators::star(13), vec![0, 5]),
        ("grid-4x5".into(), generators::grid(4, 5), vec![0, 7]),
        (
            "tree-31".into(),
            generators::balanced_binary_tree(31),
            vec![0, 30],
        ),
        (
            "random-tree-24".into(),
            generators::random_tree(24, 5),
            vec![0, 11],
        ),
        ("barbell-5-2".into(), generators::barbell(5, 2), vec![0, 6]),
    ];
    for seed in [1u64, 2, 3] {
        w.push((
            format!("gnp-30-seed{seed}"),
            generators::gnp_connected(30, 0.15, seed).unwrap(),
            vec![0, 13],
        ));
    }
    w
}

/// Runs one spec on all three engines and asserts the reports are identical.
fn assert_engines_agree(scheme: Scheme, graph: &Arc<Graph>, source: usize, label: &str) {
    let build = |engine: Engine| {
        Session::builder(scheme, Arc::clone(graph))
            .source(source)
            .message(17)
            .engine(engine)
            .build()
            .unwrap()
    };
    let reference = build(Engine::ListenerCentric);
    let b: RunReport = reference.run();
    assert!(
        b.completed(),
        "{label}: {} from {source} should complete",
        scheme.name()
    );
    let b2 = reference.run_with_message(99).unwrap();
    for engine in [Engine::TransmitterCentric, Engine::EventDriven] {
        let session = build(engine);
        let a: RunReport = session.run();
        assert_eq!(
            a,
            b,
            "{label}: {} from {source} [{engine:?}]",
            scheme.name()
        );
        // A second message through the cached labeling must agree too.
        let a2 = session.run_with_message(99).unwrap();
        assert_eq!(a2, b2, "{label}: {} rerun [{engine:?}]", scheme.name());
    }
}

#[test]
fn all_general_schemes_agree_on_every_workload() {
    for (label, graph, sources) in workloads() {
        let graph = Arc::new(graph);
        for scheme in Scheme::GENERAL {
            for &source in &sources {
                assert_engines_agree(scheme, &graph, source, &label);
            }
        }
    }
}

#[test]
fn onebit_schemes_agree_on_their_classes() {
    for n in [8usize, 13, 20] {
        let cycle = Arc::new(generators::cycle(n));
        assert_engines_agree(Scheme::OneBitCycle, &cycle, n / 2, &format!("cycle-{n}"));
    }
    for (rows, cols) in [(3usize, 5usize), (4, 4)] {
        let grid = Arc::new(generators::grid(rows, cols));
        assert_engines_agree(
            Scheme::OneBitGrid { rows, cols },
            &grid,
            rows * cols - 1,
            &format!("grid-{rows}x{cols}"),
        );
    }
}

#[test]
fn engines_agree_with_tracing_disabled() {
    // Tracing off is where the event-driven engine actually elides rounds,
    // so this is the closest scrutiny of the elision arithmetic at the
    // session level.
    let g = Arc::new(generators::gnp_connected(26, 0.16, 9).unwrap());
    for scheme in Scheme::GENERAL {
        let build = |engine: Engine| {
            Session::builder(scheme, Arc::clone(&g))
                .source(4)
                .trace(TracePolicy::Disabled)
                .engine(engine)
                .build()
                .unwrap()
        };
        let reference = build(Engine::ListenerCentric).run();
        for engine in [Engine::TransmitterCentric, Engine::EventDriven] {
            assert_eq!(
                build(engine).run(),
                reference,
                "{} without trace [{engine:?}]",
                scheme.name()
            );
        }
    }
}

#[test]
fn batch_runs_agree_across_engines() {
    let g = Arc::new(generators::gnp_connected(18, 0.2, 21).unwrap());
    let specs: Vec<RunSpec> = (0..g.node_count())
        .map(|s| RunSpec::new(s, 50 + s as u64))
        .collect();
    let build = |engine: Engine| {
        Session::builder(Scheme::LambdaArb, Arc::clone(&g))
            .engine(engine)
            .build()
            .unwrap()
    };
    let reference = build(Engine::ListenerCentric).run_batch(&specs, 4).unwrap();
    for engine in [Engine::TransmitterCentric, Engine::EventDriven] {
        let batch = build(engine).run_batch(&specs, 4).unwrap();
        assert_eq!(batch, reference, "[{engine:?}]");
    }
}

#[test]
fn multi_broadcast_reports_agree_across_engines() {
    // The k-source multi-broadcast subsystem: identical RunReports (per-
    // message completion rounds included) on all engines, for every
    // workload and several k.
    for (label, graph, _) in workloads() {
        let graph = Arc::new(graph);
        for k in [2usize, 4] {
            let build = |engine: Engine| {
                Session::builder(Scheme::MultiLambda { k }, Arc::clone(&graph))
                    .message(31)
                    .engine(engine)
                    .build()
                    .unwrap()
            };
            let reference = build(Engine::ListenerCentric).run();
            assert!(reference.completed(), "{label} k={k} should complete");
            assert_eq!(
                reference.message_completion_rounds.as_ref().unwrap().len(),
                k.min(graph.node_count()),
                "{label} k={k}"
            );
            for engine in [Engine::TransmitterCentric, Engine::EventDriven] {
                assert_eq!(build(engine).run(), reference, "{label} k={k} [{engine:?}]");
            }
        }
    }
}

#[test]
fn multi_broadcast_raw_traces_identical_across_engines() {
    use radio_labeling::broadcast::multi::MultiNode;
    use radio_labeling::labeling::multi;

    for (label, graph, sources) in workloads() {
        let graph = Arc::new(graph);
        let scheme = multi::construct(&graph, &sources).unwrap();
        let payloads: Vec<u64> = (0..scheme.k() as u64).map(|j| 70 + j).collect();
        let rounds = 2 * (scheme.k() as u64 + 2) * (graph.node_count() as u64 + 2);
        // B has legitimate isolated silent rounds mid-relay (the 2-round
        // cadence of the dominating-set wave), so quiet detection needs the
        // same 3-round window the sessions use.
        let stop = StopCondition::QuietFor {
            quiet: 3,
            cap: rounds,
        };
        let mut reference =
            Simulator::new(Arc::clone(&graph), MultiNode::network(&scheme, &payloads))
                .with_engine(Engine::ListenerCentric);
        let b = reference.run_until(stop, |_| false);
        for engine in [Engine::TransmitterCentric, Engine::EventDriven] {
            let mut sim =
                Simulator::new(Arc::clone(&graph), MultiNode::network(&scheme, &payloads))
                    .with_engine(engine);
            let a = sim.run_until(stop, |_| false);
            assert_eq!(a, b, "{label} [{engine:?}]: outcomes differ");
            assert_eq!(
                sim.trace().rounds,
                reference.trace().rounds,
                "{label} [{engine:?}]: traces differ"
            );
            for (v, (x, y)) in sim.nodes().iter().zip(reference.nodes()).enumerate() {
                assert_eq!(
                    x.payloads(),
                    y.payloads(),
                    "{label} [{engine:?}]: node {v} differs"
                );
                assert!(
                    x.holds_all_messages(),
                    "{label} [{engine:?}]: node {v} not fully informed"
                );
            }
        }
    }
}

#[test]
fn gossip_reports_agree_across_engines() {
    // The all-to-all gossip subsystem: identical RunReports (all n
    // per-message completion rounds included) on all engines, for every
    // workload. (Scheme::GENERAL already replays gossip through
    // `assert_engines_agree`; this pins the n-message report shape too.)
    for (label, graph, _) in workloads() {
        let graph = Arc::new(graph);
        let n = graph.node_count();
        let build = |engine: Engine| {
            Session::builder(Scheme::Gossip, Arc::clone(&graph))
                .message(31)
                .engine(engine)
                .build()
                .unwrap()
        };
        let reference = build(Engine::ListenerCentric).run();
        assert!(reference.completed(), "{label} should complete");
        assert_eq!(
            reference.sources.len(),
            n,
            "{label}: every node is a source"
        );
        assert_eq!(
            reference.message_completion_rounds.as_ref().unwrap().len(),
            n,
            "{label}"
        );
        for engine in [Engine::TransmitterCentric, Engine::EventDriven] {
            assert_eq!(build(engine).run(), reference, "{label} [{engine:?}]");
        }
    }
}

#[test]
fn gossip_raw_traces_identical_across_engines() {
    use radio_labeling::broadcast::gossip::GossipNode;
    use radio_labeling::labeling::gossip;

    for (label, graph, _) in workloads() {
        let graph = Arc::new(graph);
        let n = graph.node_count();
        let scheme = gossip::construct(&graph).unwrap();
        let payloads: Vec<u64> = (0..n as u64).map(|j| 70 + j).collect();
        let rounds = 6 * (n as u64 + 2) + 16;
        let stop = StopCondition::QuietFor {
            quiet: 3,
            cap: rounds,
        };
        let mut reference =
            Simulator::new(Arc::clone(&graph), GossipNode::network(&scheme, &payloads))
                .with_engine(Engine::ListenerCentric);
        let b = reference.run_until(stop, |_| false);
        for engine in [Engine::TransmitterCentric, Engine::EventDriven] {
            let mut sim =
                Simulator::new(Arc::clone(&graph), GossipNode::network(&scheme, &payloads))
                    .with_engine(engine);
            let a = sim.run_until(stop, |_| false);
            assert_eq!(a, b, "{label} [{engine:?}]: outcomes differ");
            assert_eq!(
                sim.trace().rounds,
                reference.trace().rounds,
                "{label} [{engine:?}]: traces differ"
            );
            for (v, (x, y)) in sim.nodes().iter().zip(reference.nodes()).enumerate() {
                assert_eq!(
                    x.payloads(),
                    y.payloads(),
                    "{label} [{engine:?}]: node {v} differs"
                );
                assert!(
                    x.holds_all_messages(),
                    "{label} [{engine:?}]: node {v} not fully informed"
                );
            }
        }
    }
}

// The adversarial pseudo-random protocol lives in `rn_radio::testing`
// (shared with the in-crate fault suites); this file used to carry its own
// copy. ChaosNode keeps the default wake hint of 0, so it also pins the
// event-driven engine's exact per-round degeneration.

#[test]
fn raw_traces_and_observations_identical_under_chaos() {
    // density 2 ≈ half the nodes transmit every round (collision-saturated);
    // density 16 ≈ sparse rounds (the fast engine's home turf).
    for density in [2u64, 5, 16] {
        for (label, graph, _) in workloads() {
            let graph = Arc::new(graph);
            let n = graph.node_count();
            let mut reference = Simulator::new(Arc::clone(&graph), ChaosNode::network(n, density))
                .with_engine(Engine::ListenerCentric);
            let b = reference.run_until(StopCondition::AfterRounds(60), |_| false);
            for engine in [Engine::TransmitterCentric, Engine::EventDriven] {
                let mut sim = Simulator::new(Arc::clone(&graph), ChaosNode::network(n, density))
                    .with_engine(engine);
                let a = sim.run_until(StopCondition::AfterRounds(60), |_| false);
                assert_eq!(a, b, "{label} d={density} [{engine:?}]: outcomes differ");
                assert_eq!(
                    sim.trace().rounds,
                    reference.trace().rounds,
                    "{label} d={density} [{engine:?}]: traces differ"
                );
                for (v, (x, y)) in sim.nodes().iter().zip(reference.nodes()).enumerate() {
                    assert_eq!(
                        x.observations, y.observations,
                        "{label} d={density} [{engine:?}]: node {v} observations differ"
                    );
                }
            }
        }
    }
}

/// A deterministic seeded fault plan exercising every adversary the
/// simulator supports at once: one crash, one jam window, and one late
/// waker, each picked by a SplitMix64 hash (never the source, so the
/// broadcast at least starts). Victims may coincide — the fault semantics
/// are total either way, and all engines must agree regardless.
fn seeded_plan(n: usize, seed: u64, source: usize) -> FaultPlan {
    let pick = |salt: u64| -> usize {
        let mut z = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(salt.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let v = (z % n as u64) as usize;
        if v == source {
            (v + 1) % n
        } else {
            v
        }
    };
    let n64 = n as u64;
    FaultPlan::none()
        .crash(pick(1), 1 + seed % n64)
        .jam(pick(2), 2 + seed % 3, (n64 / 2).max(2))
        .late_wake(pick(3), 3 + seed % n64)
}

#[test]
fn all_general_schemes_agree_under_seeded_fault_plans() {
    // The fault path rewires every engine's inner loops (inert nodes, jammer
    // slots, receive-side rewrites, forced jam wake-ups); this replays every
    // GENERAL scheme under a crash + jam + late-wake plan and demands
    // field-for-field identical RunReports — robustness columns included —
    // plus a deterministic rerun.
    for (label, graph, sources) in workloads() {
        let graph = Arc::new(graph);
        let n = graph.node_count();
        for seed in [1u64, 5] {
            let source = sources[0];
            let plan = seeded_plan(n, seed, source);
            for scheme in Scheme::GENERAL {
                let build = |engine: Engine| {
                    Session::builder(scheme, Arc::clone(&graph))
                        .source(source)
                        .message(17)
                        .engine(engine)
                        .faults(plan.clone())
                        .build()
                        .unwrap()
                };
                let reference = build(Engine::ListenerCentric);
                let b: RunReport = reference.run();
                assert!(
                    b.delivery_rate >= 0.0 && b.delivery_rate <= 1.0,
                    "{label}: delivery_rate out of range"
                );
                for engine in [Engine::TransmitterCentric, Engine::EventDriven] {
                    let session = build(engine);
                    let a: RunReport = session.run();
                    assert_eq!(
                        a,
                        b,
                        "{label} seed={seed}: {} faulted [{engine:?}]",
                        scheme.name()
                    );
                    assert_eq!(
                        a,
                        session.run(),
                        "{label} seed={seed}: {} faulted rerun [{engine:?}]",
                        scheme.name()
                    );
                }
            }
        }
    }
}

#[test]
fn chaos_traces_and_observations_identical_under_faults() {
    // Raw-simulator equivalence with faults active: the full trace
    // (including `Faulted` markers) and every node's observation log must
    // match across all engines under the collision-heavy chaos protocol.
    for (label, graph, _) in workloads() {
        let graph = Arc::new(graph);
        let n = graph.node_count();
        let plan = seeded_plan(n, 3, 0);
        let mut reference = Simulator::new(Arc::clone(&graph), ChaosNode::network(n, 3))
            .with_engine(Engine::ListenerCentric)
            .with_faults(&plan);
        let b = reference.run_until(StopCondition::AfterRounds(60), |_| false);
        for engine in [Engine::TransmitterCentric, Engine::EventDriven] {
            let mut sim = Simulator::new(Arc::clone(&graph), ChaosNode::network(n, 3))
                .with_engine(engine)
                .with_faults(&plan);
            let a = sim.run_until(StopCondition::AfterRounds(60), |_| false);
            assert_eq!(a, b, "{label} [{engine:?}]: outcomes differ");
            assert_eq!(
                sim.trace().rounds,
                reference.trace().rounds,
                "{label} [{engine:?}]: traces differ"
            );
            for (v, (x, y)) in sim.nodes().iter().zip(reference.nodes()).enumerate() {
                assert_eq!(
                    x.observations, y.observations,
                    "{label} [{engine:?}]: node {v} observations differ"
                );
            }
        }
    }
}

#[test]
fn chaos_without_trace_agrees_across_engines() {
    // Tracing off turns on silent-span elision in the event-driven engine;
    // the chaos protocol (default hint 0) must force exact per-round
    // execution anyway, with identical outcomes and observation logs.
    for (label, graph, _) in workloads() {
        let graph = Arc::new(graph);
        let n = graph.node_count();
        let mut reference = Simulator::new(Arc::clone(&graph), ChaosNode::network(n, 4))
            .with_engine(Engine::ListenerCentric)
            .without_trace();
        let b = reference.run_until(StopCondition::QuietFor { quiet: 2, cap: 80 }, |_| false);
        for engine in [Engine::TransmitterCentric, Engine::EventDriven] {
            let mut sim = Simulator::new(Arc::clone(&graph), ChaosNode::network(n, 4))
                .with_engine(engine)
                .without_trace();
            let a = sim.run_until(StopCondition::QuietFor { quiet: 2, cap: 80 }, |_| false);
            assert_eq!(a, b, "{label} [{engine:?}]: outcomes differ");
            for (v, (x, y)) in sim.nodes().iter().zip(reference.nodes()).enumerate() {
                assert_eq!(
                    x.observations, y.observations,
                    "{label} [{engine:?}]: node {v} observations differ"
                );
            }
        }
    }
}

#[test]
fn instrumented_sessions_report_identically_on_every_engine() {
    // Telemetry must be a pure observer: `run_instrumented` installs a
    // metrics sink (the only run mode that pays for per-round metric
    // assembly) and must still return the exact `RunReport` the plain `run`
    // produces, on every engine — while its aggregated counters reproduce
    // the trace-derived statistics field for field.
    use radio_labeling::radio::ExecutionStats;

    let g = Arc::new(generators::gnp_connected(26, 0.16, 9).unwrap());
    for scheme in Scheme::GENERAL {
        for engine in ENGINES {
            let session = Session::builder(scheme, Arc::clone(&g))
                .source(4)
                .message(17)
                .engine(engine)
                .build()
                .unwrap();
            let plain = session.run();
            let (instrumented, metrics) = session.run_instrumented();
            assert_eq!(
                instrumented,
                plain,
                "{} [{engine:?}]: sink changed the report",
                scheme.name()
            );
            let counters = metrics.counters.expect("instrumented run counts");
            assert_eq!(
                ExecutionStats::from_counters(&counters),
                plain.stats,
                "{} [{engine:?}]: counters diverge from trace stats",
                scheme.name()
            );
            assert_eq!(
                metrics.counters_match_trace,
                Some(true),
                "{} [{engine:?}]: cross-check not recorded",
                scheme.name()
            );
            assert!(
                metrics.span_nanos("round_loop").is_some(),
                "{} [{engine:?}]: round_loop span missing",
                scheme.name()
            );
        }
    }
}

#[test]
fn instrumented_traceless_sessions_recover_full_stats_on_every_engine() {
    // With tracing off a plain run reports only the round count, but an
    // instrumented one substitutes its counters for the trace walk — so the
    // report must match the plain traceless run in every other field, and
    // its statistics must equal what a *traced* run derives, on every
    // engine (including the event-driven engine's elided spans).
    let g = Arc::new(generators::gnp_connected(26, 0.16, 9).unwrap());
    for scheme in Scheme::GENERAL {
        for engine in ENGINES {
            let build = |trace: TracePolicy| {
                Session::builder(scheme, Arc::clone(&g))
                    .source(4)
                    .message(17)
                    .trace(trace)
                    .engine(engine)
                    .build()
                    .unwrap()
            };
            let traced = build(TracePolicy::Recorded).run();
            let session = build(TracePolicy::Disabled);
            let mut plain = session.run();
            let (instrumented, metrics) = session.run_instrumented();
            assert_eq!(
                instrumented.stats,
                traced.stats,
                "{} [{engine:?}]: counter-backed stats diverge from trace",
                scheme.name()
            );
            assert_eq!(
                metrics.counters_match_trace,
                None,
                "{} [{engine:?}]: no trace, so no cross-check",
                scheme.name()
            );
            plain.stats = instrumented.stats.clone();
            assert_eq!(
                instrumented,
                plain,
                "{} [{engine:?}]: sink changed a traceless report beyond stats",
                scheme.name()
            );
        }
    }
}

#[test]
fn sink_installed_raw_traces_identical_on_every_engine() {
    // Raw-simulator half of the observer guarantee: a `CounterSink` bolted
    // onto the simulator must leave the trace, the outcome and every node's
    // observation log byte-identical to the uninstrumented run — and its
    // counters must agree with the trace walk — on every engine, under the
    // collision-heavy chaos protocol.
    use radio_labeling::radio::{CounterSink, ExecutionStats};

    for (label, graph, _) in workloads() {
        let graph = Arc::new(graph);
        let n = graph.node_count();
        for engine in ENGINES {
            let mut bare =
                Simulator::new(Arc::clone(&graph), ChaosNode::network(n, 3)).with_engine(engine);
            let b = bare.run_until(StopCondition::AfterRounds(60), |_| false);
            let mut sim = Simulator::new(Arc::clone(&graph), ChaosNode::network(n, 3))
                .with_engine(engine)
                .with_metrics(Box::new(CounterSink::default()));
            let a = sim.run_until(StopCondition::AfterRounds(60), |_| false);
            assert_eq!(a, b, "{label} [{engine:?}]: outcomes differ");
            assert_eq!(
                sim.trace().rounds,
                bare.trace().rounds,
                "{label} [{engine:?}]: sink changed the trace"
            );
            for (v, (x, y)) in sim.nodes().iter().zip(bare.nodes()).enumerate() {
                assert_eq!(
                    x.observations, y.observations,
                    "{label} [{engine:?}]: node {v} observations differ"
                );
            }
            let counters = sim.metrics_counters().expect("sink installed");
            assert_eq!(
                ExecutionStats::from_counters(&counters),
                ExecutionStats::from_trace(sim.trace()),
                "{label} [{engine:?}]: counters diverge from the trace walk"
            );
        }
    }
}

#[test]
fn engines_list_is_exhaustive() {
    // A compile-time reminder: adding an `Engine` variant must extend this
    // suite. The match has no wildcard arm, so a new variant fails to build
    // until it is added both here and to `ENGINES` above.
    for engine in ENGINES {
        match engine {
            Engine::TransmitterCentric | Engine::ListenerCentric | Engine::EventDriven => {}
        }
    }
    assert_eq!(ENGINES.len(), 3);
}
