//! Property-based tests (proptest) on randomly generated connected radio
//! networks: the paper's guarantees must hold for *every* graph, so we let
//! proptest hunt for counterexamples.

use proptest::prelude::*;
use radio_labeling::broadcast::session::{RunReport, Scheme, Session};
use radio_labeling::broadcast::verify;
use radio_labeling::graph::{algorithms, generators, Graph};
use radio_labeling::labeling::{lambda, lambda_ack, lambda_arb, SequenceConstruction};

/// Builds a single-use session and runs it: the new-API equivalent of the
/// old one-shot runners.
fn run_once(scheme: Scheme, g: Graph, source: usize, message: u64) -> RunReport {
    Session::builder(scheme, g)
        .source(source)
        .message(message)
        .build()
        .unwrap()
        .run()
}

/// Strategy: a random connected graph of 2..=48 nodes (mixing trees, sparse
/// and dense G(n, p) samples) plus a valid source index.
fn connected_graph_and_source() -> impl Strategy<Value = (Graph, usize)> {
    (2usize..=48, any::<u64>(), 0usize..3).prop_flat_map(|(n, seed, kind)| {
        let g = match kind {
            0 => generators::random_tree(n, seed),
            1 => generators::gnp_connected(n, 0.12, seed).expect("valid parameters"),
            _ => generators::gnp_connected(n, 0.4, seed).expect("valid parameters"),
        };
        let n = g.node_count();
        (Just(g), 0..n)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn broadcast_always_completes_within_2n_minus_3((g, source) in connected_graph_and_source()) {
        let n = g.node_count();
        let result = run_once(Scheme::Lambda, g, source, 7);
        prop_assert!(result.completed());
        prop_assert!(verify::check_theorem_2_9(result.completion_round, n).is_ok());
    }

    #[test]
    fn acknowledgement_always_arrives_in_window((g, source) in connected_graph_and_source()) {
        let n = g.node_count();
        let result = run_once(Scheme::LambdaAck, g, source, 7);
        prop_assert!(verify::check_theorem_3_9(
            result.completion_round,
            result.ack_round,
            n
        )
        .is_ok());
    }

    #[test]
    fn labels_stay_constant_length_and_few((g, source) in connected_graph_and_source()) {
        let l = lambda::construct(&g, source).unwrap();
        prop_assert_eq!(l.labeling().length(), 2);
        prop_assert!(l.labeling().distinct_count() <= 4);

        let la = lambda_ack::construct(&g, source).unwrap();
        prop_assert_eq!(la.labeling().length(), 3);
        prop_assert!(la.labeling().distinct_count() <= 5);
        for forbidden in lambda_ack::forbidden_labels() {
            prop_assert!(la.labeling().nodes_with_label(forbidden).is_empty());
        }

        let lb = lambda_arb::construct(&g).unwrap();
        prop_assert_eq!(lb.labeling().length(), 3);
        prop_assert!(lb.labeling().distinct_count() <= 6);
    }

    #[test]
    fn sequence_construction_invariants((g, source) in connected_graph_and_source()) {
        let c = SequenceConstruction::build(
            &g,
            source,
            radio_labeling::graph::algorithms::ReductionOrder::Forward,
        )
        .unwrap();
        // Lemma 2.6: ell <= n.
        prop_assert!(c.ell() <= g.node_count());
        // Corollary 2.7: the NEW sets partition V \ {source}.
        let mut covered = vec![false; g.node_count()];
        for stage in c.stages() {
            for &v in &stage.new {
                prop_assert!(!covered[v], "node {} in two NEW sets", v);
                covered[v] = true;
            }
            // Fact 2.1: NEW ⊆ FRONTIER ⊆ UNINF.
            for v in &stage.new {
                prop_assert!(stage.frontier.contains(v));
            }
            for v in &stage.frontier {
                prop_assert!(stage.uninf.contains(v));
            }
            // DOM_i dominates FRONTIER_i minimally.
            if !stage.frontier.is_empty() {
                prop_assert!(algorithms::is_minimal_dominating_set(
                    &g,
                    &stage.dom,
                    &stage.frontier
                ));
            }
        }
        prop_assert!(!covered[source]);
        prop_assert_eq!(
            covered.iter().filter(|&&c| c).count(),
            g.node_count() - 1
        );
    }

    #[test]
    fn no_node_transmits_before_being_informed((g, source) in connected_graph_and_source()) {
        // Physical sanity: in the trace of algorithm B, any node that
        // transmits µ either is the source or has already received µ.
        let dist = algorithms::bfs_distances(&g, source);
        let result = run_once(Scheme::Lambda, g.clone(), source, 7);
        for v in g.nodes() {
            if v == source {
                continue;
            }
            let informed = result.informed_rounds[v];
            prop_assert!(informed.is_some());
            // A node informed in round r is at BFS distance <= (r+1)/2 from
            // the source: information travels at most one hop per odd round.
            let d = dist[v].unwrap() as u64;
            prop_assert!(informed.unwrap() >= d);
        }
    }

    #[test]
    fn arbitrary_source_completes_for_random_source((g, source) in connected_graph_and_source()) {
        // Keep instances small: B_arb runs three phases.
        prop_assume!(g.node_count() <= 24);
        let session = Session::builder(Scheme::LambdaArb, g).coordinator(0).build().unwrap();
        let r = session
            .run_with(radio_labeling::broadcast::session::RunSpec::new(source, 7))
            .unwrap();
        prop_assert!(r.completion_round.is_some());
        prop_assert!(r.common_knowledge_round.is_some());
        prop_assert!(r.common_knowledge_round >= r.completion_round);
    }

    #[test]
    fn baselines_complete_on_random_graphs((g, source) in connected_graph_and_source()) {
        prop_assume!(g.node_count() <= 32);
        let g = std::sync::Arc::new(g);
        let ids = Session::builder(Scheme::UniqueIds, std::sync::Arc::clone(&g))
            .source(source)
            .message(7)
            .build()
            .unwrap()
            .run();
        prop_assert!(ids.completed());
        let colors = Session::builder(Scheme::SquareColoring, g)
            .source(source)
            .message(7)
            .build()
            .unwrap()
            .run();
        prop_assert!(colors.completed());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn graph_generators_produce_connected_simple_graphs(
        n in 2usize..120,
        seed in any::<u64>(),
        p in 0.0f64..1.0,
    ) {
        let g = generators::gnp_connected(n, p, seed).unwrap();
        prop_assert_eq!(g.node_count(), n);
        prop_assert!(algorithms::is_connected(&g));
        // simple graph: no self loops, no duplicate edges (by construction the
        // edge iterator yields each pair once with u < v).
        for (u, v) in g.edges() {
            prop_assert!(u < v);
        }

        let t = generators::random_tree(n, seed);
        prop_assert!(algorithms::is_tree(&t));
    }

    #[test]
    fn square_coloring_separates_close_nodes(n in 4usize..40, seed in any::<u64>()) {
        let g = generators::gnp_connected(n, 0.15, seed).unwrap();
        let (coloring, k) = algorithms::square_graph_coloring(
            &g,
            algorithms::coloring::ColoringOrder::DegreeDescending,
        );
        prop_assert!(k >= 1);
        for v in g.nodes() {
            let nbrs = g.neighbors(v);
            for (i, &a) in nbrs.iter().enumerate() {
                prop_assert!(coloring[a] != coloring[v]);
                for &b in &nbrs[i + 1..] {
                    prop_assert!(coloring[a] != coloring[b]);
                }
            }
        }
    }

    #[test]
    fn minimal_dominating_subset_is_minimal(n in 4usize..40, seed in any::<u64>()) {
        let g = generators::gnp_connected(n, 0.2, seed).unwrap();
        let candidates: Vec<usize> = g.nodes().collect();
        let targets: Vec<usize> = g.nodes().collect();
        let sub = algorithms::minimal_dominating_subset(
            &g,
            &candidates,
            &targets,
            algorithms::ReductionOrder::Forward,
        )
        .unwrap();
        prop_assert!(algorithms::is_minimal_dominating_set(&g, &sub, &targets));
    }
}

/// Strategy for the digest-contract tests: a small random connected graph
/// (the digest history records every node every round, so keep n modest)
/// plus a source index.
fn small_graph_and_source() -> impl Strategy<Value = (Graph, usize)> {
    (2usize..=10, any::<u64>(), 0usize..2).prop_flat_map(|(n, seed, kind)| {
        let g = match kind {
            0 => generators::random_tree(n, seed),
            _ => generators::gnp_connected(n, 0.35, seed).expect("valid parameters"),
        };
        let n = g.node_count();
        (Just(g), 0..n)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The `state_digest` contract, over every general scheme: the digest
    /// history of a run is identical when recomputed from a fresh clone of
    /// the node templates (clone-stable and deterministic across reruns),
    /// and the round that informs a node changes that node's digest — the
    /// informed transition is never digest-invisible.
    #[test]
    fn state_digests_are_deterministic_and_see_the_informed_transition(
        (g, source) in small_graph_and_source()
    ) {
        for scheme in Scheme::GENERAL {
            let mut builder = Session::builder(scheme, g.clone());
            if matches!(
                scheme,
                Scheme::Lambda | Scheme::LambdaAck | Scheme::LambdaArb
                    | Scheme::UniqueIds | Scheme::SquareColoring
            ) {
                builder = builder.source(source);
            }
            let session = builder.build().unwrap();
            let report = session.run();
            let rounds = report.rounds_executed;
            let history = session.state_digest_history(rounds);
            prop_assert_eq!(history.len() as u64, rounds + 1);
            // Recomputing from a fresh template clone reproduces every
            // digest of every node at every reachable state.
            let rerun = session.state_digest_history(rounds);
            prop_assert_eq!(&history, &rerun, "{} digests drifted across reruns", scheme.name());
            // Every protocol node type implements the digest hook (0 is the
            // default opt-out and would silence the drift checks).
            for (r, row) in history.iter().enumerate() {
                for (v, &d) in row.iter().enumerate() {
                    prop_assert!(d != 0, "{}: node {v} after round {r} digests to 0", scheme.name());
                }
            }
            // The informing round is digest-visible.
            for (v, informed) in report.informed_rounds.iter().enumerate() {
                if let Some(r) = *informed {
                    if r >= 1 {
                        let r = r as usize;
                        prop_assert!(
                            history[r][v] != history[r - 1][v],
                            "{}: node {v} informed in round {r} without a digest change",
                            scheme.name()
                        );
                    }
                }
            }
        }
    }
}
