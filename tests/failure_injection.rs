//! Failure-injection tests: corrupt the labeling (or withhold it entirely)
//! and verify that (a) the broadcast really does break, and (b) the
//! verification oracles detect the breakage. This guards against the oracles
//! being vacuously satisfied.

use radio_labeling::broadcast::algo_b::BNode;
use radio_labeling::broadcast::session::{Scheme, Session};
use radio_labeling::broadcast::verify;
use radio_labeling::graph::generators;
use radio_labeling::labeling::{lambda, Label, Labeling};
use radio_labeling::radio::{Simulator, StopCondition};
use rand::seq::SliceRandom;
use rand::SeedableRng;

const MSG: u64 = 77;

fn run_b_with_labeling(
    g: &radio_labeling::graph::Graph,
    labeling: &Labeling,
    source: usize,
    cap: u64,
) -> Vec<Option<u64>> {
    let nodes = BNode::network(labeling, source, MSG);
    let mut sim = Simulator::new(g.clone(), nodes);
    sim.run_until(StopCondition::AfterRounds(cap), |_| false);
    verify::first_payload_rounds(sim.trace(), g.node_count(), source, |m| {
        matches!(m, radio_labeling::broadcast::BMessage::Data(_))
    })
}

#[test]
fn all_zero_labels_stall_immediately_beyond_the_source_neighbourhood() {
    // With every label 00 nobody ever relays: only Γ(source) is informed.
    let g = generators::grid(4, 5);
    let labeling = Labeling::new(vec![Label::two_bits(false, false); 20], "all-zero");
    let informed = run_b_with_labeling(&g, &labeling, 0, 100);
    let informed_count = informed.iter().filter(|r| r.is_some()).count();
    assert_eq!(informed_count, 1 + g.degree(0));
    assert!(verify::check_theorem_2_9(verify::completion_round(&informed), 20).is_err());
}

#[test]
fn shuffled_lambda_labels_break_the_guarantee_and_are_detected() {
    // Take a correct λ labeling and permute it among the nodes: the label
    // *multiset* is fine but the structure is destroyed. On a long path this
    // must fail (with high probability for any non-trivial permutation); the
    // oracle must notice.
    let g = generators::path(24);
    let correct = lambda::construct(&g, 0).unwrap();
    let mut labels: Vec<Label> = (0..24).map(|v| correct.labeling().get(v)).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    labels.shuffle(&mut rng);
    // Make sure we actually changed something.
    assert_ne!(
        labels,
        (0..24)
            .map(|v| correct.labeling().get(v))
            .collect::<Vec<_>>()
    );
    let corrupted = Labeling::new(labels, "shuffled");
    let informed = run_b_with_labeling(&g, &corrupted, 0, 200);
    let completion = verify::completion_round(&informed);
    // Either the broadcast stalls (some node never informed) or it violates
    // the Lemma 2.8 schedule; on a shuffled path it stalls.
    assert!(
        completion.is_none(),
        "shuffled labels unexpectedly completed: {informed:?}"
    );
    assert!(verify::check_theorem_2_9(completion, 24).is_err());
}

#[test]
fn wrong_source_construction_is_detected_by_the_lemma_check() {
    // Labels built for source 0 but executed from source 5: the run may even
    // complete, but the Lemma 2.8 characterisation against the source-0
    // construction must fail — demonstrating that the oracle checks the
    // schedule and not merely completion.
    let g = generators::cycle(12);
    let scheme_for_0 = lambda::construct(&g, 0).unwrap();
    let nodes = BNode::network(scheme_for_0.labeling(), 5, MSG);
    let mut sim = Simulator::new(g, nodes);
    sim.run_until(StopCondition::QuietFor { quiet: 3, cap: 100 }, |_| false);
    assert!(verify::check_lemma_2_8(
        sim.trace(),
        scheme_for_0.construction(),
        scheme_for_0.labeling()
    )
    .is_err());
}

#[test]
fn dropping_the_x2_bit_breaks_long_paths() {
    // Erase every x2 bit from a correct λ labeling: dominators no longer
    // receive "stay" and drop out of the schedule, so deep nodes are never
    // informed on a path (where the same dominator must persist).
    let g = generators::path(30);
    let correct = lambda::construct(&g, 0).unwrap();
    let stripped: Vec<Label> = (0..30)
        .map(|v| Label::two_bits(correct.labeling().get(v).x1(), false))
        .collect();
    // On a path the x2 bits are what keep nothing... they are actually unused
    // (each dominator transmits once), so instead strip x1: no relay at all.
    let no_x1: Vec<Label> = (0..30)
        .map(|v| Label::two_bits(false, correct.labeling().get(v).x2()))
        .collect();
    let informed_stripped = run_b_with_labeling(&g, &Labeling::new(stripped, "no-x2"), 0, 200);
    let informed_no_x1 = run_b_with_labeling(&g, &Labeling::new(no_x1, "no-x1"), 0, 200);
    // Removing x1 certainly breaks the broadcast.
    assert!(verify::completion_round(&informed_no_x1).is_none());
    // Removing x2 may or may not matter depending on the graph; on a path it
    // is harmless — assert only that the oracle agrees with whatever happened.
    if let Some(c) = verify::completion_round(&informed_stripped) {
        assert!(c <= 2 * 30 - 3);
    }
}

#[test]
fn runner_error_paths_are_exercised() {
    let disconnected = radio_labeling::graph::Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
    assert!(Session::builder(Scheme::Lambda, disconnected)
        .build()
        .is_err());
    let g = std::sync::Arc::new(generators::path(5));
    let build = |scheme| Session::builder(scheme, std::sync::Arc::clone(&g));
    assert!(build(Scheme::Lambda).source(99).build().is_err());
    assert!(build(Scheme::LambdaArb).coordinator(99).build().is_err());
    assert!(build(Scheme::LambdaArb).source(99).build().is_err());
    assert!(build(Scheme::OneBitGrid { rows: 1, cols: 5 })
        .source(9)
        .build()
        .is_err());
}
