//! Failure-injection tests: corrupt the labeling (or withhold it entirely)
//! and verify that (a) the broadcast really does break, and (b) the
//! verification oracles detect the breakage. This guards against the oracles
//! being vacuously satisfied.
//!
//! The label-corruption tests drive [`BNode::network`] and a raw
//! [`Simulator`] on purpose: the [`Session`] API only constructs *correct*
//! labelings, so a deliberately wrong labeling has to bypass it. Everything
//! that does not need a corrupted labeling goes through `Session` — run-time
//! fault injection in particular uses the first-class
//! [`FaultPlan`](radio_labeling::radio::FaultPlan) support.

use radio_labeling::broadcast::algo_b::BNode;
use radio_labeling::broadcast::session::{Scheme, Session};
use radio_labeling::broadcast::verify;
use radio_labeling::graph::generators;
use radio_labeling::labeling::{lambda, Label, Labeling};
use radio_labeling::radio::{FaultPlan, Simulator, StopCondition};
use rand::seq::SliceRandom;
use rand::SeedableRng;

const MSG: u64 = 77;

/// Runs Algorithm B from `source` under an arbitrary (possibly corrupted)
/// labeling and returns the round each node was first informed. This is the
/// one place the suite bypasses `Session` — see the module docs.
fn run_b_with_labeling(
    g: &radio_labeling::graph::Graph,
    labeling: &Labeling,
    source: usize,
    cap: u64,
) -> Vec<Option<u64>> {
    let nodes = BNode::network(labeling, source, MSG);
    let mut sim = Simulator::new(g.clone(), nodes);
    sim.run_until(StopCondition::AfterRounds(cap), |_| false);
    verify::first_payload_rounds(sim.trace(), g.node_count(), source, |m| {
        matches!(m, radio_labeling::broadcast::BMessage::Data(_))
    })
}

#[test]
fn all_zero_labels_stall_immediately_beyond_the_source_neighbourhood() {
    // With every label 00 nobody ever relays: only Γ(source) is informed.
    let g = generators::grid(4, 5);
    let labeling = Labeling::new(vec![Label::two_bits(false, false); 20], "all-zero");
    let informed = run_b_with_labeling(&g, &labeling, 0, 100);
    let informed_count = informed.iter().filter(|r| r.is_some()).count();
    assert_eq!(informed_count, 1 + g.degree(0));
    assert!(verify::check_theorem_2_9(verify::completion_round(&informed), 20).is_err());
}

#[test]
fn shuffled_lambda_labels_break_the_guarantee_and_are_detected() {
    // Take a correct λ labeling and permute it among the nodes: the label
    // *multiset* is fine but the structure is destroyed. On a long path this
    // must fail (with high probability for any non-trivial permutation); the
    // oracle must notice.
    let g = generators::path(24);
    let correct = lambda::construct(&g, 0).unwrap();
    let mut labels: Vec<Label> = (0..24).map(|v| correct.labeling().get(v)).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    labels.shuffle(&mut rng);
    // Make sure we actually changed something.
    assert_ne!(
        labels,
        (0..24)
            .map(|v| correct.labeling().get(v))
            .collect::<Vec<_>>()
    );
    let corrupted = Labeling::new(labels, "shuffled");
    let informed = run_b_with_labeling(&g, &corrupted, 0, 200);
    let completion = verify::completion_round(&informed);
    // Either the broadcast stalls (some node never informed) or it violates
    // the Lemma 2.8 schedule; on a shuffled path it stalls.
    assert!(
        completion.is_none(),
        "shuffled labels unexpectedly completed: {informed:?}"
    );
    assert!(verify::check_theorem_2_9(completion, 24).is_err());
}

#[test]
fn wrong_source_construction_is_detected_by_the_lemma_check() {
    // Labels built for source 0 but executed from source 5: the run may even
    // complete, but the Lemma 2.8 characterisation against the source-0
    // construction must fail — demonstrating that the oracle checks the
    // schedule and not merely completion. (Raw simulator again: `Session`
    // would rebuild a correct labeling for source 5.)
    let g = generators::cycle(12);
    let scheme_for_0 = lambda::construct(&g, 0).unwrap();
    let nodes = BNode::network(scheme_for_0.labeling(), 5, MSG);
    let mut sim = Simulator::new(g, nodes);
    sim.run_until(StopCondition::QuietFor { quiet: 3, cap: 100 }, |_| false);
    assert!(verify::check_lemma_2_8(
        sim.trace(),
        scheme_for_0.construction(),
        scheme_for_0.labeling()
    )
    .is_err());
}

#[test]
fn stripping_x1_bits_stalls_broadcast_on_a_path() {
    // x1 marks the transmitters of Algorithm B's schedule: with every x1
    // bit erased nobody relays, so nothing beyond Γ(source) is ever
    // informed and Theorem 2.9 is violated.
    let g = generators::path(30);
    let correct = lambda::construct(&g, 0).unwrap();
    let no_x1: Vec<Label> = (0..30)
        .map(|v| Label::two_bits(false, correct.labeling().get(v).x2()))
        .collect();
    let informed = run_b_with_labeling(&g, &Labeling::new(no_x1, "no-x1"), 0, 200);
    let completion = verify::completion_round(&informed);
    assert!(completion.is_none(), "no-x1 run completed: {informed:?}");
    assert!(verify::check_theorem_2_9(completion, 30).is_err());
    // Only the source's neighbourhood ever hears the message.
    let informed_count = informed.iter().filter(|r| r.is_some()).count();
    assert_eq!(informed_count, 1 + g.degree(0));
}

#[test]
fn stripping_x2_bits_on_a_path_still_meets_theorem_2_9() {
    // x2 marks the "stay" senders that keep a dominator transmitting for
    // several rounds. On a path every dominator transmits exactly once, so
    // the x2 bits are never load-bearing there: erasing them must leave the
    // broadcast complete and within the Theorem 2.9 bound of 2n - 3. (The
    // x1 test above is the counterpart where stripping a bit *must* stall.)
    let g = generators::path(30);
    let correct = lambda::construct(&g, 0).unwrap();
    let no_x2: Vec<Label> = (0..30)
        .map(|v| Label::two_bits(correct.labeling().get(v).x1(), false))
        .collect();
    let informed = run_b_with_labeling(&g, &Labeling::new(no_x2, "no-x2"), 0, 200);
    let completion = verify::completion_round(&informed);
    assert!(
        verify::check_theorem_2_9(completion, 30).is_ok(),
        "no-x2 path run broke Theorem 2.9: {completion:?}"
    );
    assert!(completion.is_some_and(|c| c <= 2 * 30 - 3));
}

#[test]
fn session_fault_injection_breaks_broadcast_and_the_report_says_where() {
    // The Session-level counterpart of the corruption tests: a *correct*
    // labeling, but a crashed relay at run time. The robustness columns of
    // the report must localise the damage.
    let g = generators::path(16);
    let session = Session::builder(Scheme::Lambda, g)
        .faults(FaultPlan::none().crash(7, 1))
        .build()
        .unwrap();
    let report = session.run();
    assert!(!report.completed());
    assert_eq!(report.faults_injected, 1);
    // Everything up to the crashed node is informed, nothing past it.
    assert!(report.informed_rounds[6].is_some());
    assert!(report.informed_rounds[8].is_none());
    assert!(report.delivery_rate < 1.0);
    assert_eq!(report.stalled_at, report.informed_rounds[6]);
}

#[test]
fn runner_error_paths_are_exercised() {
    let disconnected = radio_labeling::graph::Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
    assert!(Session::builder(Scheme::Lambda, disconnected)
        .build()
        .is_err());
    let g = std::sync::Arc::new(generators::path(5));
    let build = |scheme| Session::builder(scheme, std::sync::Arc::clone(&g));
    assert!(build(Scheme::Lambda).source(99).build().is_err());
    assert!(build(Scheme::LambdaArb).coordinator(99).build().is_err());
    assert!(build(Scheme::LambdaArb).source(99).build().is_err());
    assert!(build(Scheme::Lambda)
        .faults(FaultPlan::none().crash(99, 1))
        .build()
        .is_err());
    assert!(build(Scheme::OneBitGrid { rows: 1, cols: 5 })
        .source(9)
        .build()
        .is_err());
}

/// Builds a session for `scheme` on `g` under `plan` with `engine` and
/// returns its report plus its recorded trace shape. Used by the fault-plan
/// edge-case tests below, which pin degenerate plans to identical behaviour
/// across all three engines.
fn faulted_run(
    scheme: Scheme,
    g: &std::sync::Arc<radio_labeling::graph::Graph>,
    plan: &FaultPlan,
    engine: radio_labeling::radio::Engine,
) -> (
    radio_labeling::broadcast::session::RunReport,
    radio_labeling::radio::TraceShape,
) {
    Session::builder(scheme, std::sync::Arc::clone(g))
        .engine(engine)
        .faults(plan.clone())
        .build()
        .unwrap()
        .run_shaped()
}

const ALL_ENGINES: [radio_labeling::radio::Engine; 3] = [
    radio_labeling::radio::Engine::TransmitterCentric,
    radio_labeling::radio::Engine::ListenerCentric,
    radio_labeling::radio::Engine::EventDriven,
];

#[test]
fn zero_length_jam_is_a_complete_noop_on_every_engine() {
    // A jam spanning zero rounds is never effective: the run must be
    // byte-identical to the fault-free run — report, trace shape and the
    // `faults_injected` accounting — on every engine.
    let g = std::sync::Arc::new(generators::path(9));
    let dud = FaultPlan::none().jam(4, 3, 0);
    for scheme in [Scheme::Lambda, Scheme::LambdaAck] {
        for engine in ALL_ENGINES {
            let (clean, clean_shape) = faulted_run(scheme, &g, &FaultPlan::none(), engine);
            let (jammed, jammed_shape) = faulted_run(scheme, &g, &dud, engine);
            assert_eq!(jammed, clean, "{} [{engine:?}]", scheme.name());
            assert_eq!(jammed_shape, clean_shape, "{} [{engine:?}]", scheme.name());
            assert_eq!(jammed.faults_injected, 0);
        }
    }
}

#[test]
fn duplicate_crash_events_behave_like_the_earliest_crash() {
    // Two crash events for the same node collapse to the earliest round.
    // The duplicate changes the injection *count* (the plan really carries
    // two events) but must not change the executed timeline, and all three
    // engines must agree event-for-event.
    let g = std::sync::Arc::new(generators::path(10));
    let dup = FaultPlan::none().crash(5, 6).crash(5, 3);
    let single = FaultPlan::none().crash(5, 3);
    let (ref_report, ref_shape) = faulted_run(Scheme::Lambda, &g, &dup, ALL_ENGINES[0]);
    for engine in ALL_ENGINES {
        let (report, shape) = faulted_run(Scheme::Lambda, &g, &dup, engine);
        assert_eq!(report, ref_report, "duplicate crash [{engine:?}]");
        assert_eq!(shape, ref_shape, "duplicate crash [{engine:?}]");
        let (baseline, baseline_shape) = faulted_run(Scheme::Lambda, &g, &single, engine);
        assert_eq!(shape, baseline_shape, "dup vs single timeline [{engine:?}]");
        assert_eq!(report.informed_rounds, baseline.informed_rounds);
        assert_eq!(report.completion_round, baseline.completion_round);
    }
}

#[test]
fn crash_and_late_wake_on_the_same_node_pin_across_engines() {
    // A node that wakes late *and* crashes: asleep through round 4, alive
    // for round 5, dead from round 6. The interleaving exercises both the
    // inert-node and forced-wake paths in every engine; all three must
    // produce the identical report and trace shape, deterministically.
    let g = std::sync::Arc::new(generators::path(8));
    let plan = FaultPlan::none().late_wake(3, 5).crash(3, 6);
    for scheme in [Scheme::Lambda, Scheme::UniqueIds] {
        let (ref_report, ref_shape) = faulted_run(scheme, &g, &plan, ALL_ENGINES[0]);
        // The crash really bites: the chain past the dead relay stalls.
        assert!(!ref_report.completed(), "{}", scheme.name());
        assert_eq!(ref_report.faults_injected, 2);
        for engine in ALL_ENGINES {
            let (report, shape) = faulted_run(scheme, &g, &plan, engine);
            assert_eq!(report, ref_report, "{} [{engine:?}]", scheme.name());
            assert_eq!(shape, ref_shape, "{} [{engine:?}]", scheme.name());
            let (rerun, rerun_shape) = faulted_run(scheme, &g, &plan, engine);
            assert_eq!(rerun, report, "{} rerun [{engine:?}]", scheme.name());
            assert_eq!(rerun_shape, shape, "{} rerun [{engine:?}]", scheme.name());
        }
    }
}
