//! Exhaustive verification of the 1-bit schemes on their graph classes
//! (paper §5 conclusion): every cycle size and every grid shape in the tested
//! range, from every possible source position, must complete — and the
//! schemes must refuse graphs outside their class.

use radio_labeling::broadcast::session::{RunSpec, Scheme, Session};
use radio_labeling::graph::generators;
use radio_labeling::labeling::onebit;
use radio_labeling::labeling::LabelingError;
use std::sync::Arc;

#[test]
fn cycles_every_size_and_source() {
    for n in 3..=40 {
        let g = Arc::new(generators::cycle(n));
        let session = Session::builder(Scheme::OneBitCycle, Arc::clone(&g))
            .message(7)
            .build()
            .unwrap_or_else(|e| panic!("cycle {n}: {e}"));
        for source in 0..n {
            let r = session
                .run_with(RunSpec::new(source, 7))
                .unwrap_or_else(|e| panic!("cycle {n}, source {source}: {e}"));
            assert!(
                r.completed(),
                "cycle {n}, source {source}: broadcast incomplete"
            );
            assert_eq!(r.label_length, 1);
            assert!(r.distinct_labels <= 2);
            // The two waves travel at hop speed with at most one round of
            // extra delay, so completion is at most about n/2 + 2 rounds.
            assert!(
                r.completion_round.unwrap() <= n as u64 / 2 + 3,
                "cycle {n}, source {source}: took {} rounds",
                r.completion_round.unwrap()
            );
        }
    }
}

#[test]
fn grids_every_shape_and_source() {
    for (rows, cols) in [
        (1, 8),
        (8, 1),
        (2, 2),
        (2, 7),
        (3, 3),
        (3, 6),
        (4, 4),
        (4, 7),
        (5, 5),
        (6, 4),
    ] {
        let g = Arc::new(generators::grid(rows, cols));
        let session = Session::builder(Scheme::OneBitGrid { rows, cols }, Arc::clone(&g))
            .message(7)
            .build()
            .unwrap_or_else(|e| panic!("grid {rows}x{cols}: {e}"));
        for source in 0..g.node_count() {
            let r = session
                .run_with(RunSpec::new(source, 7))
                .unwrap_or_else(|e| panic!("grid {rows}x{cols}, source {source}: {e}"));
            assert!(
                r.completed(),
                "grid {rows}x{cols}, source {source}: broadcast incomplete"
            );
            assert_eq!(r.label_length, 1);
            // Row wave at hop speed, column waves at half speed:
            // about cols + 2 * rows rounds in the worst case.
            assert!(
                r.completion_round.unwrap() <= (cols + 2 * rows + 2) as u64,
                "grid {rows}x{cols}, source {source}: took {} rounds",
                r.completion_round.unwrap()
            );
        }
    }
}

#[test]
fn even_cycles_need_the_marked_neighbor() {
    // Sanity for the construction itself: the all-zero labeling must fail on
    // even cycles (the four-cycle impossibility), which is exactly why the
    // scheme marks one neighbour of the source.
    use radio_labeling::broadcast::delay_relay::DelayRelayNode;
    use radio_labeling::labeling::{Label, Labeling};
    use radio_labeling::radio::{Simulator, StopCondition};

    for n in [4usize, 6, 8, 10] {
        let g = generators::cycle(n);
        let all_zero = Labeling::new(vec![Label::one_bit(false); n], "uniform");
        let nodes = DelayRelayNode::network(&all_zero, 0, 7);
        let mut sim = Simulator::new(g, nodes);
        sim.run_until(StopCondition::AfterRounds(10 * n as u64), |_| false);
        let antipodal = n / 2;
        assert!(
            !sim.nodes()[antipodal].is_informed(),
            "cycle {n}: the antipodal node should never be informed without the marked label"
        );
    }
}

#[test]
fn schemes_reject_out_of_class_graphs() {
    let not_a_cycle = generators::path(7);
    assert!(matches!(
        onebit::cycle_onebit(&not_a_cycle, 0),
        Err(LabelingError::UnsupportedGraphClass { .. })
    ));
    let not_the_right_grid = generators::grid(3, 4);
    assert!(matches!(
        onebit::grid_onebit(&not_the_right_grid, 4, 3, 0),
        Err(LabelingError::UnsupportedGraphClass { .. })
    ));
    assert!(matches!(
        onebit::grid_onebit(&generators::cycle(12), 3, 4, 0),
        Err(LabelingError::UnsupportedGraphClass { .. })
    ));
}
