//! End-to-end acceptance suite for the gossip subsystem: on **every**
//! topology registry preset, all-to-all gossip must complete with every
//! node holding all n messages (cross-checked against the recorded trace),
//! the collection phase must use exactly one transmitter per round, and
//! the whole task must finish within a linear number of rounds.

use radio_labeling::broadcast::gossip::GossipNode;
use radio_labeling::broadcast::session::{Scheme, Session};
use radio_labeling::broadcast::MultiMessage;
use radio_labeling::graph::generators::TopologyFamily;
use radio_labeling::labeling::gossip;
use radio_labeling::radio::{Simulator, StopCondition};
use std::sync::Arc;

#[test]
fn gossip_completes_on_every_registry_preset_with_trace_verification() {
    for family in TopologyFamily::PRESETS {
        let g = Arc::new(family.generate(16, 1).expect("presets generate"));
        let n = g.node_count();
        let scheme = gossip::construct(&g).unwrap();
        let payloads: Vec<u64> = (0..n as u64).map(|j| 500 + j).collect();
        let nodes = GossipNode::network(&scheme, &payloads);
        let mut sim = Simulator::new(Arc::clone(&g), nodes);

        // Collection: exactly one transmitter in each of the 2(n-1) rounds.
        assert_eq!(
            scheme.collection_rounds(),
            2 * (n as u64 - 1),
            "{}: token walk length",
            family.name()
        );
        for round in 1..=scheme.collection_rounds() {
            assert_eq!(
                sim.step_round(),
                1,
                "{}: collection round {round} must have exactly one transmitter",
                family.name()
            );
        }
        assert!(
            sim.nodes()[scheme.coordinator()].holds_all_messages(),
            "{}: the coordinator holds everything when the walk ends",
            family.name()
        );

        // Run to completion; total time stays linear (collection 2(n-1) +
        // Theorem 2.9's 2n-3 for the bundle broadcast, + the quiet tail).
        sim.run_until(
            StopCondition::QuietFor {
                quiet: 3,
                cap: 6 * (n as u64 + 2) + 16,
            },
            |s| s.nodes().iter().all(GossipNode::holds_all_messages),
        );
        let linear_bound = 4 * n as u64 + 16;
        assert!(
            sim.current_round() <= linear_bound,
            "{}: {} rounds exceeds the linear bound {linear_bound}",
            family.name(),
            sim.current_round()
        );
        for (v, node) in sim.nodes().iter().enumerate() {
            assert!(
                node.holds_all_messages(),
                "{}: node {v} missing a message",
                family.name()
            );
            for (j, &p) in payloads.iter().enumerate() {
                assert_eq!(
                    node.payloads()[j],
                    Some(p),
                    "{}: node {v}, message {j}",
                    family.name()
                );
            }
        }

        // Verify the node-state accounting against the recorded trace with
        // one bucketed scan: a node holds message j iff it originated j or
        // the trace shows it hearing a message carrying j.
        let heard = sim
            .trace()
            .first_receive_rounds_bucketed(n, n, |m, emit| match m {
                MultiMessage::Relay { source_index, .. } => emit(*source_index as usize),
                MultiMessage::Token(bundle) | MultiMessage::Bundle(bundle) => {
                    for &(j, _) in bundle.iter() {
                        emit(j as usize);
                    }
                }
                MultiMessage::Stay => {}
            });
        for (j, row) in heard.iter().enumerate() {
            for (v, first) in row.iter().enumerate() {
                assert!(
                    v == j || first.is_some(),
                    "{}: node {v} holds message {j} but the trace never delivered it",
                    family.name()
                );
            }
        }
    }
}

#[test]
fn gossip_sessions_complete_on_every_registry_preset() {
    for family in TopologyFamily::PRESETS {
        let g = Arc::new(family.generate(16, 1).expect("presets generate"));
        let n = g.node_count();
        let report = Session::builder(Scheme::Gossip, Arc::clone(&g))
            .message(900)
            .build()
            .unwrap()
            .run();
        assert!(report.completed(), "{}", family.name());
        assert_eq!(report.scheme, "gossip", "{}", family.name());
        assert_eq!(report.sources.len(), n, "{}", family.name());
        assert_eq!(report.label_length, 2, "{}", family.name());
        assert!(
            report.completion_round.unwrap() <= 4 * n as u64,
            "{}: completion must stay linear",
            family.name()
        );
        let per_message = report.message_completion_rounds.as_ref().unwrap();
        assert_eq!(per_message.len(), n, "{}", family.name());
        assert!(
            per_message.iter().all(|&(_, round)| round.is_some()),
            "{}: every message fully propagates",
            family.name()
        );
        assert!(
            report.informed_rounds.iter().all(Option::is_some),
            "{}: every node ends fully informed",
            family.name()
        );
    }
}
