//! End-to-end integration tests spanning every crate: generate a workload
//! graph, label it, simulate the universal algorithm, and verify the paper's
//! guarantees against the omniscient oracles.

use radio_labeling::broadcast::algo_b::BNode;
use radio_labeling::broadcast::common_round::run_common_round;
use radio_labeling::broadcast::session::{RunReport, RunSpec, Scheme, Session};
use radio_labeling::broadcast::verify;
use radio_labeling::graph::{algorithms, generators, Graph};
use radio_labeling::labeling::{lambda, lambda_ack, lambda_arb};
use radio_labeling::radio::{Simulator, StopCondition};

/// Builds a single-use session and runs it: the new-API equivalent of the
/// old one-shot runners, used wherever a workload is only exercised once.
fn run_once(scheme: Scheme, g: Graph, source: usize, message: u64) -> RunReport {
    Session::builder(scheme, g)
        .source(source)
        .message(message)
        .build()
        .unwrap()
        .run()
}

/// The workload menagerie used by the end-to-end checks.
fn workloads() -> Vec<(&'static str, Graph, usize)> {
    vec![
        ("path-16", generators::path(16), 0),
        ("path-16-mid-source", generators::path(16), 8),
        ("cycle-17", generators::cycle(17), 5),
        ("cycle-16", generators::cycle(16), 0),
        ("star-20", generators::star(20), 0),
        ("star-20-leaf-source", generators::star(20), 7),
        ("complete-12", generators::complete(12), 3),
        ("grid-5x6", generators::grid(5, 6), 11),
        ("hypercube-5", generators::hypercube(5), 0),
        ("wheel-14", generators::wheel(14), 1),
        ("binary-tree-31", generators::balanced_binary_tree(31), 0),
        ("random-tree-40", generators::random_tree(40, 11), 13),
        ("caterpillar", generators::caterpillar(8, 2), 2),
        ("spider", generators::spider(4, 5), 0),
        ("barbell", generators::barbell(7, 3), 0),
        ("lollipop", generators::lollipop(8, 8), 15),
        ("theta", generators::theta(4, 3).unwrap(), 0),
        (
            "series-parallel",
            generators::series_parallel(35, 3).unwrap(),
            4,
        ),
        (
            "gnp-sparse",
            generators::gnp_connected(45, 0.07, 5).unwrap(),
            9,
        ),
        (
            "gnp-dense",
            generators::gnp_connected(30, 0.4, 6).unwrap(),
            0,
        ),
        (
            "bipartite",
            generators::random_bipartite_connected(12, 15, 0.2, 7).unwrap(),
            0,
        ),
        (
            "regularish",
            generators::random_regularish(36, 5, 8).unwrap(),
            17,
        ),
    ]
}

#[test]
fn theorem_2_9_broadcast_bound_holds_everywhere() {
    for (name, g, source) in workloads() {
        let n = g.node_count();
        let result = run_once(Scheme::Lambda, g, source, 99);
        assert!(
            result.completed(),
            "{name}: broadcast did not complete within the cap"
        );
        verify::check_theorem_2_9(result.completion_round, n)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        // Every informed round is odd (Lemma 2.8: new nodes are informed in
        // rounds 2i-1), except the source's 0.
        for (v, round) in result.informed_rounds.iter().enumerate() {
            let r = round.unwrap();
            if v != source {
                assert_eq!(r % 2, 1, "{name}: node {v} informed in even round {r}");
            }
        }
    }
}

#[test]
fn theorem_3_9_acknowledgement_window_holds_everywhere() {
    for (name, g, source) in workloads() {
        let n = g.node_count();
        let result = run_once(Scheme::LambdaAck, g, source, 7);
        verify::check_theorem_3_9(result.completion_round, result.ack_round, n)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn lemma_2_8_characterisation_holds_everywhere() {
    for (name, g, source) in workloads() {
        let scheme = lambda::construct(&g, source).unwrap();
        let nodes = BNode::network(scheme.labeling(), source, 5);
        let mut sim = Simulator::new(g.clone(), nodes);
        sim.run_until(
            StopCondition::QuietFor {
                quiet: 3,
                cap: 4 * g.node_count() as u64 + 16,
            },
            |_| false,
        );
        verify::check_lemma_2_8(sim.trace(), scheme.construction(), scheme.labeling())
            .unwrap_or_else(|e| panic!("{name}: Lemma 2.8 violated: {e}"));
    }
}

#[test]
fn scheme_lengths_and_distinct_label_counts_match_the_paper() {
    for (name, g, source) in workloads() {
        let l = lambda::construct(&g, source).unwrap();
        assert_eq!(l.labeling().length(), 2, "{name}");
        assert!(l.labeling().distinct_count() <= 4, "{name}");

        let la = lambda_ack::construct(&g, source).unwrap();
        assert_eq!(la.labeling().length(), 3, "{name}");
        assert!(la.labeling().distinct_count() <= 5, "{name}");
        for forbidden in lambda_ack::forbidden_labels() {
            assert!(
                la.labeling().nodes_with_label(forbidden).is_empty(),
                "{name}: Fact 3.1 violated"
            );
        }

        let lb = lambda_arb::construct(&g).unwrap();
        assert_eq!(lb.labeling().length(), 3, "{name}");
        assert!(lb.labeling().distinct_count() <= 6, "{name}");
    }
}

#[test]
fn arbitrary_source_algorithm_works_from_every_corner() {
    // Smaller sweep (B_arb is the slowest algorithm) but exhaustive over
    // source positions.
    let cases = vec![
        ("cycle-9", generators::cycle(9)),
        ("grid-3x4", generators::grid(3, 4)),
        ("random-tree-14", generators::random_tree(14, 4)),
        ("gnp-14", generators::gnp_connected(14, 0.25, 3).unwrap()),
    ];
    for (name, g) in cases {
        // One session per graph: the source-independent lambda_arb labeling
        // is constructed once and shared by every source position, and the
        // independent runs fan out over worker threads.
        let session = Session::builder(Scheme::LambdaArb, g)
            .coordinator(0)
            .build()
            .unwrap();
        let specs: Vec<RunSpec> = (0..session.graph().node_count())
            .map(|source| RunSpec::new(source, 1234))
            .collect();
        for r in session.run_batch(&specs, 4).unwrap() {
            assert!(
                r.completion_round.is_some(),
                "{name}: source {} failed to broadcast",
                r.source
            );
            assert!(
                r.common_knowledge_round.is_some(),
                "{name}: source {} failed to reach common knowledge",
                r.source
            );
        }
    }
}

#[test]
fn common_round_construction_holds_everywhere() {
    for (name, g, source) in workloads() {
        if g.node_count() < 3 {
            continue;
        }
        let r = run_common_round(&g, source, 5).unwrap();
        assert!(r.claim_holds, "{name}: common-round claim failed: {r:?}");
    }
}

#[test]
fn baselines_also_complete_but_with_longer_labels() {
    for (name, g, source) in workloads().into_iter().take(10) {
        let g = std::sync::Arc::new(g);
        let run = |scheme| {
            Session::builder(scheme, std::sync::Arc::clone(&g))
                .source(source)
                .message(5)
                .build()
                .unwrap()
                .run()
        };
        let lambda_result = run(Scheme::Lambda);
        let id_result = run(Scheme::UniqueIds);
        let color_result = run(Scheme::SquareColoring);
        assert!(id_result.completed(), "{name}: id baseline failed");
        assert!(color_result.completed(), "{name}: coloring baseline failed");
        assert!(
            id_result.label_length >= lambda_result.label_length,
            "{name}: ids should need at least as many bits"
        );
    }
}

#[test]
fn disconnected_graphs_are_rejected_up_front() {
    let disconnected = Graph::from_edges(6, &[(0, 1), (2, 3), (4, 5)]).unwrap();
    assert!(lambda::construct(&disconnected, 0).is_err());
    assert!(lambda_ack::construct(&disconnected, 0).is_err());
    assert!(lambda_arb::construct(&disconnected).is_err());
    assert!(Session::builder(Scheme::Lambda, disconnected)
        .build()
        .is_err());
}

#[test]
fn informed_wavefront_respects_bfs_distance() {
    // A node at BFS distance d cannot be informed before round 2d - 1... but
    // it is informed no earlier than round d (each round informs at most one
    // more BFS layer). This is a physical sanity check on the simulator.
    for (name, g, source) in workloads() {
        let dist = algorithms::bfs_distances(&g, source);
        let nodes: Vec<usize> = g.nodes().collect();
        let result = run_once(Scheme::Lambda, g, source, 5);
        for v in nodes {
            if v == source {
                continue;
            }
            let informed = result.informed_rounds[v].unwrap();
            let d = dist[v].unwrap() as u64;
            assert!(
                informed >= d,
                "{name}: node {v} informed in round {informed} but is at distance {d}"
            );
        }
    }
}
