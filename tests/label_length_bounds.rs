//! Property tests for the multi-message schemes' label-length accounting
//! and collection-schedule invariants, over every topology registry preset.
//!
//! The documented contract (docs/ARCHITECTURE.md, "label-length
//! accounting"): the broadcast half of both `multi_lambda` and `gossip` is
//! the paper's λ — **2 bits per node on every graph**, which is what
//! `RunReport::label_length` and the sweep histograms record. The
//! collection schedule is the reduction's extra advice, and its usefulness
//! rests on two structural invariants this suite hunts counterexamples
//! for: the schedule is *gap-free* (slots cover rounds `1..=R` exactly)
//! and *collision-free by construction* (exactly one transmitter per
//! round — the two together are `CollectionPlan::
//! is_gap_free_and_collision_free`), and the gossip token walk is a closed
//! walk through adjacent nodes that visits every node in exactly
//! `2(n − 1)` rounds.

use proptest::prelude::*;
use radio_labeling::graph::generators::TopologyFamily;
use radio_labeling::graph::Graph;
use radio_labeling::labeling::collection::TokenPayload;
use radio_labeling::labeling::{gossip, multi};

/// Strategy: a preset family index, a size, and a seed — every one of the
/// 18 registry presets is reachable.
fn family_point() -> impl Strategy<Value = (usize, usize, u64)> {
    (
        0usize..TopologyFamily::PRESETS.len(),
        6usize..=48,
        any::<u64>(),
    )
}

fn generate(idx: usize, n: usize, seed: u64) -> Graph {
    TopologyFamily::PRESETS[idx]
        .generate(n, seed)
        .expect("presets generate for every n >= 4")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn multi_lambda_labels_stay_within_two_bits((idx, n, seed) in family_point()) {
        let g = generate(idx, n, seed);
        let n = g.node_count();
        // Three sources spread over the range (deduplicated by construct).
        let sources = [0, n / 3, (2 * n) / 3];
        let scheme = multi::construct(&g, &sources).unwrap();
        prop_assert!(
            scheme.labeling().length() <= 2,
            "{}: multi_lambda labels must stay within the documented 2-bit bound",
            TopologyFamily::PRESETS[idx].name()
        );
        prop_assert!(scheme
            .labeling()
            .labels()
            .iter()
            .all(|l| l.len() <= 2));
        prop_assert!(scheme.labeling().distinct_count() <= 4);
        // The BFS-path plan is gap-free and collision-free by construction.
        prop_assert!(scheme.plan().is_gap_free_and_collision_free());
    }

    #[test]
    fn gossip_labels_stay_within_two_bits((idx, n, seed) in family_point()) {
        let g = generate(idx, n, seed);
        let scheme = gossip::construct(&g).unwrap();
        prop_assert!(
            scheme.labeling().length() <= 2,
            "{}: gossip labels must stay within the documented 2-bit bound",
            TopologyFamily::PRESETS[idx].name()
        );
        prop_assert!(scheme
            .labeling()
            .labels()
            .iter()
            .all(|l| l.len() <= 2));
        prop_assert!(scheme.labeling().distinct_count() <= 4);
    }

    #[test]
    fn gossip_token_schedule_is_gap_free_and_collision_free((idx, n, seed) in family_point()) {
        let g = generate(idx, n, seed);
        let n = g.node_count();
        let scheme = gossip::construct(&g).unwrap();
        let plan = scheme.plan();
        // Gap-free, one transmitter per round (collision-free), linear.
        prop_assert!(plan.is_gap_free_and_collision_free());
        prop_assert_eq!(plan.rounds(), 2 * (n as u64 - 1));
        // Every slot carries the accumulated token, the walk starts at the
        // coordinator, moves only along edges, ends next to the
        // coordinator, and visits every node.
        prop_assert!(plan
            .slots()
            .iter()
            .all(|s| s.payload == TokenPayload::Accumulated));
        prop_assert_eq!(plan.slots()[0].node, scheme.coordinator());
        for w in plan.slots().windows(2) {
            prop_assert!(
                g.has_edge(w[0].node, w[1].node),
                "tour steps must be adjacent"
            );
        }
        prop_assert!(g.has_edge(
            plan.slots().last().expect("n >= 2").node,
            scheme.coordinator()
        ));
        let mut seen = vec![false; n];
        seen[scheme.coordinator()] = true;
        for s in plan.slots() {
            seen[s.node] = true;
        }
        prop_assert!(seen.iter().all(|&v| v), "tour must visit every node");
    }
}
