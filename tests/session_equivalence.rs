//! Equivalence suite for the session redesign: the unified `Session` API must
//! reproduce the results of the legacy one-shot runners — same completion,
//! acknowledgement and common-knowledge rounds, same informed rounds, same
//! communication statistics — for every scheme across the canonical workload
//! families, and repeated session runs must reuse the cached labeling.
//!
//! The legacy functions are deprecated delegates, so these tests also pin
//! down that the delegation preserves every field of the historical result
//! structs.

#![allow(deprecated)]

use radio_labeling::broadcast::runner;
use radio_labeling::broadcast::session::{
    RoundCapPolicy, RunSpec, Scheme, Session, StopPolicy, TracePolicy,
};
use radio_labeling::graph::{generators, Graph};
use radio_labeling::labeling::Labeling;
use std::sync::Arc;

const MSG: u64 = 42;

/// The workloads the redesign is validated on: Path, Star, Grid, GnpSparse
/// (plus a cycle for the 1-bit scheme).
fn workloads() -> Vec<(&'static str, Graph, usize)> {
    vec![
        ("path-16", generators::path(16), 0),
        ("path-16-mid", generators::path(16), 8),
        ("star-12", generators::star(12), 0),
        ("star-12-leaf", generators::star(12), 5),
        ("grid-4x5", generators::grid(4, 5), 7),
        (
            "gnp-sparse-24",
            generators::gnp_connected(24, 0.12, 9).unwrap(),
            3,
        ),
    ]
}

fn session_run(scheme: Scheme, g: &Graph, source: usize) -> radio_labeling::broadcast::RunReport {
    Session::builder(scheme, g.clone())
        .source(source)
        .message(MSG)
        .build()
        .unwrap()
        .run()
}

#[test]
fn lambda_sessions_reproduce_run_broadcast() {
    for (name, g, source) in workloads() {
        let old = runner::run_broadcast(&g, source, MSG).unwrap();
        let new = session_run(Scheme::Lambda, &g, source);
        assert_eq!(old.scheme, new.scheme, "{name}");
        assert_eq!(old.node_count, new.node_count, "{name}");
        assert_eq!(old.label_length, new.label_length, "{name}");
        assert_eq!(old.distinct_labels, new.distinct_labels, "{name}");
        assert_eq!(old.informed_rounds, new.informed_rounds, "{name}");
        assert_eq!(old.completion_round, new.completion_round, "{name}");
        assert_eq!(old.stats, new.stats, "{name}");
    }
}

#[test]
fn lambda_ack_sessions_reproduce_run_acknowledged_broadcast() {
    for (name, g, source) in workloads() {
        let old = runner::run_acknowledged_broadcast(&g, source, MSG).unwrap();
        let new = session_run(Scheme::LambdaAck, &g, source);
        assert_eq!(old.broadcast.scheme, new.scheme, "{name}");
        assert_eq!(old.broadcast.informed_rounds, new.informed_rounds, "{name}");
        assert_eq!(
            old.broadcast.completion_round, new.completion_round,
            "{name}"
        );
        assert_eq!(old.ack_round, new.ack_round, "{name}");
        assert_eq!(old.broadcast.stats, new.stats, "{name}");
    }
}

#[test]
fn lambda_arb_sessions_reproduce_run_arbitrary_source() {
    for (name, g, source) in workloads() {
        let old = runner::run_arbitrary_source(&g, 0, source, MSG).unwrap();
        let new = Session::builder(Scheme::LambdaArb, g.clone())
            .coordinator(0)
            .source(source)
            .message(MSG)
            .build()
            .unwrap()
            .run();
        assert_eq!(old.coordinator, new.coordinator.unwrap(), "{name}");
        assert_eq!(old.source, new.source, "{name}");
        assert_eq!(old.completion_round, new.completion_round, "{name}");
        assert_eq!(
            old.common_knowledge_round, new.common_knowledge_round,
            "{name}"
        );
        assert_eq!(old.label_length, new.label_length, "{name}");
        assert_eq!(old.stats, new.stats, "{name}");
    }
}

#[test]
fn baseline_sessions_reproduce_the_baseline_runners() {
    for (name, g, source) in workloads() {
        let old_ids = runner::run_unique_id_broadcast(&g, source, MSG).unwrap();
        let new_ids = session_run(Scheme::UniqueIds, &g, source);
        assert_eq!(old_ids.scheme, new_ids.scheme, "{name}");
        assert_eq!(old_ids.informed_rounds, new_ids.informed_rounds, "{name}");
        assert_eq!(old_ids.completion_round, new_ids.completion_round, "{name}");
        assert_eq!(old_ids.stats, new_ids.stats, "{name}");

        let old_col = runner::run_coloring_broadcast(&g, source, MSG).unwrap();
        let new_col = session_run(Scheme::SquareColoring, &g, source);
        assert_eq!(old_col.scheme, new_col.scheme, "{name}");
        assert_eq!(old_col.informed_rounds, new_col.informed_rounds, "{name}");
        assert_eq!(old_col.completion_round, new_col.completion_round, "{name}");
        assert_eq!(old_col.stats, new_col.stats, "{name}");
    }
}

#[test]
fn onebit_sessions_reproduce_the_onebit_runners() {
    let c = generators::cycle(14);
    let old = runner::run_onebit_cycle(&c, 4, MSG).unwrap();
    let new = Session::builder(Scheme::OneBitCycle, c)
        .source(4)
        .message(MSG)
        .build()
        .unwrap()
        .run();
    assert_eq!(old.scheme, new.scheme);
    assert_eq!(old.informed_rounds, new.informed_rounds);
    assert_eq!(old.completion_round, new.completion_round);
    assert_eq!(old.stats, new.stats);

    let g = generators::grid(3, 5);
    let old = runner::run_onebit_grid(&g, 3, 5, 7, MSG).unwrap();
    let new = Session::builder(Scheme::OneBitGrid { rows: 3, cols: 5 }, g)
        .source(7)
        .message(MSG)
        .build()
        .unwrap()
        .run();
    assert_eq!(old.scheme, new.scheme);
    assert_eq!(old.informed_rounds, new.informed_rounds);
    assert_eq!(old.completion_round, new.completion_round);
    assert_eq!(old.stats, new.stats);
}

#[test]
fn consecutive_runs_reuse_the_cached_labeling() {
    let g = generators::gnp_connected(30, 0.12, 5).unwrap();
    let session = Session::builder(Scheme::Lambda, g)
        .source(3)
        .message(MSG)
        .build()
        .unwrap();
    // The labeling is owned by the session: the same allocation is observed
    // before and after running, and both runs agree exactly.
    let labeling_ptr = session.labeling() as *const Labeling;
    let first = session.run();
    let mid_ptr = session.labeling() as *const Labeling;
    let second = session.run();
    assert!(std::ptr::eq(labeling_ptr, mid_ptr));
    assert!(std::ptr::eq(labeling_ptr, session.labeling()));
    assert_eq!(first.informed_rounds, second.informed_rounds);
    assert_eq!(first.completion_round, second.completion_round);
    assert_eq!(first.stats, second.stats);
}

#[test]
fn batch_runs_match_sequential_runs_for_every_thread_count() {
    let g = Arc::new(generators::gnp_connected(20, 0.18, 11).unwrap());
    let session = Session::builder(Scheme::LambdaArb, Arc::clone(&g))
        .build()
        .unwrap();
    let specs: Vec<RunSpec> = (0..g.node_count())
        .map(|s| RunSpec::new(s, MSG + s as u64))
        .collect();
    let sequential = session.run_batch(&specs, 1).unwrap();
    for threads in [2, 4, 8] {
        let parallel = session.run_batch(&specs, threads).unwrap();
        assert_eq!(parallel.len(), sequential.len());
        for (p, s) in parallel.iter().zip(&sequential) {
            assert_eq!(p.source, s.source, "threads={threads}");
            assert_eq!(p.completion_round, s.completion_round, "threads={threads}");
            assert_eq!(
                p.common_knowledge_round, s.common_knowledge_round,
                "threads={threads}"
            );
            assert_eq!(p.informed_rounds, s.informed_rounds, "threads={threads}");
            assert_eq!(p.stats, s.stats, "threads={threads}");
        }
    }
}

#[test]
fn trace_policy_disabled_preserves_round_measurements() {
    for (name, g, source) in workloads() {
        let recorded = session_run(Scheme::Lambda, &g, source);
        let disabled = Session::builder(Scheme::Lambda, g)
            .source(source)
            .message(MSG)
            .trace(TracePolicy::Disabled)
            .build()
            .unwrap()
            .run();
        assert_eq!(recorded.informed_rounds, disabled.informed_rounds, "{name}");
        assert_eq!(
            recorded.completion_round, disabled.completion_round,
            "{name}"
        );
        assert_eq!(recorded.rounds_executed, disabled.rounds_executed, "{name}");
        assert_eq!(
            disabled.stats.transmissions, 0,
            "{name}: stats need a trace"
        );
    }
}

#[test]
fn explicit_policies_compose_with_every_scheme() {
    let g = Arc::new(generators::grid(4, 4));
    for scheme in Scheme::GENERAL {
        let r = Session::builder(scheme, Arc::clone(&g))
            .message(MSG)
            .stop(StopPolicy::RunToCap)
            .round_cap(RoundCapPolicy::Fixed(4096))
            .trace(TracePolicy::Disabled)
            .build()
            .unwrap()
            .run();
        assert!(r.completed(), "{} under explicit policies", scheme.name());
    }
}
