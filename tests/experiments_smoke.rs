//! Smoke tests for the experiment harness: every experiment id must run on a
//! small configuration and report no failed theorem checks (a `NO` cell in a
//! report table means a guarantee was violated).

use radio_labeling::experiments::experiments::{run_by_id, EXPERIMENT_IDS};
use radio_labeling::experiments::ExperimentConfig;

fn small_config() -> ExperimentConfig {
    ExperimentConfig {
        sizes: vec![8, 12],
        seeds: vec![1],
        threads: 2,
    }
}

#[test]
fn every_experiment_runs_and_reports_no_violations() {
    let cfg = small_config();
    for (id, name) in EXPERIMENT_IDS {
        let tables = run_by_id(id, &cfg).unwrap_or_else(|| panic!("unknown id {id}"));
        assert!(!tables.is_empty(), "{id} ({name}) produced no tables");
        for t in &tables {
            assert!(t.row_count() > 0, "{id}: empty table {}", t.title);
            // E7 intentionally contains NO cells (the uniform attempts are
            // *supposed* to fail); everywhere else a NO is a violated check.
            if id != "e7" {
                assert!(
                    !t.render().contains(" NO"),
                    "{id} ({name}) reported a violated check:\n{}",
                    t.render()
                );
            }
        }
    }
}

#[test]
fn experiment_tables_render_with_titles_and_headers() {
    let cfg = small_config();
    let tables = run_by_id("e2", &cfg).unwrap();
    let rendered = tables[0].render();
    assert!(rendered.starts_with("== E2"));
    assert!(rendered.contains("family"));
    assert!(rendered.contains("bound 2n-3"));
}

#[test]
fn parallel_and_sequential_experiment_runs_agree() {
    let mut cfg = small_config();
    cfg.threads = 1;
    let seq = run_by_id("e4", &cfg).unwrap();
    cfg.threads = 4;
    let par = run_by_id("e4", &cfg).unwrap();
    assert_eq!(
        seq, par,
        "sweep results must not depend on the thread count"
    );
}
