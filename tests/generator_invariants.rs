//! Property tests for the topology registry's generator invariants.
//!
//! Three contracts every [`TopologyFamily`] preset must honour, hunted with
//! randomised (but seeded, hence reproducible) inputs:
//!
//! 1. **Seeded determinism** — the same `(family, n, seed)` always yields
//!    the same graph, because every report and bench cites exactly that
//!    triple as its provenance;
//! 2. **Connectivity** — the paper's model is connected radio networks, and
//!    the registry promises never to hand out anything else;
//! 3. **Degree bounds** — families that advertise a structural degree bound
//!    (paths, cycles, tori, degree-capped random graphs, caterpillars)
//!    actually keep it, for every size and seed.

use proptest::prelude::*;
use radio_labeling::graph::generators::TopologyFamily;
use radio_labeling::graph::{algorithms, Graph};

/// Strategy: a preset family index, a size, and a seed.
fn family_point() -> impl Strategy<Value = (usize, usize, u64)> {
    (
        0usize..TopologyFamily::PRESETS.len(),
        4usize..=96,
        any::<u64>(),
    )
}

fn generate(idx: usize, n: usize, seed: u64) -> Graph {
    TopologyFamily::PRESETS[idx]
        .generate(n, seed)
        .expect("presets generate for every n >= 4")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn same_triple_same_graph((idx, n, seed) in family_point()) {
        let a = generate(idx, n, seed);
        let b = generate(idx, n, seed);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn every_instance_is_connected((idx, n, seed) in family_point()) {
        let g = generate(idx, n, seed);
        prop_assert!(
            algorithms::is_connected(&g),
            "{} disconnected at n={n} seed={seed}",
            TopologyFamily::PRESETS[idx].name()
        );
    }

    #[test]
    fn sizes_stay_close_to_requested((idx, n, seed) in family_point()) {
        let g = generate(idx, n, seed);
        let actual = g.node_count();
        // [n/2, 2n], except that a family's minimum shape may round tiny
        // requests up to 9 nodes (the 3x3 torus is the largest minimum).
        prop_assert!(
            actual >= n / 2 && actual <= (2 * n).max(9),
            "{} produced {actual} nodes for a request of {n}",
            TopologyFamily::PRESETS[idx].name()
        );
    }

    #[test]
    fn degree_caps_hold_for_every_cap((cap, n, seed) in (2usize..=8, 4usize..=96, any::<u64>())) {
        let g = TopologyFamily::DegreeCapped { max_degree: cap }
            .generate(n, seed)
            .unwrap();
        prop_assert!(
            g.max_degree() <= cap,
            "cap {cap} violated: max degree {} at n={n} seed={seed}",
            g.max_degree()
        );
        prop_assert!(algorithms::is_connected(&g));
    }

    #[test]
    fn structural_degree_bounds((n, seed) in (4usize..=80, any::<u64>())) {
        // Families whose shape implies a degree bound must honour it.
        prop_assert!(TopologyFamily::Path.generate(n, seed).unwrap().max_degree() <= 2);
        let cycle = TopologyFamily::Cycle.generate(n, seed).unwrap();
        prop_assert!(cycle.degrees().all(|d| d == 2));
        let torus = TopologyFamily::Torus.generate(n, seed).unwrap();
        prop_assert!(torus.degrees().all(|d| d == 4));
        prop_assert!(TopologyFamily::Grid.generate(n, seed).unwrap().max_degree() <= 4);
        prop_assert!(TopologyFamily::BalancedTree.generate(n, seed).unwrap().max_degree() <= 3);
        for legs in 1..=3usize {
            let cat = TopologyFamily::Caterpillar { legs }.generate(n, seed).unwrap();
            prop_assert!(
                cat.max_degree() <= legs + 2,
                "caterpillar legs={legs}: max degree {}",
                cat.max_degree()
            );
        }
    }

    #[test]
    fn hypercubes_are_regular_powers_of_two((n, seed) in (4usize..=96, any::<u64>())) {
        let g = TopologyFamily::Hypercube.generate(n, seed).unwrap();
        let nodes = g.node_count();
        prop_assert!(nodes.is_power_of_two());
        let dim = nodes.trailing_zeros() as usize;
        prop_assert!(g.degrees().all(|d| d == dim));
    }

    #[test]
    fn seeds_actually_vary_random_families((n, seed) in (16usize..=64, any::<u64>())) {
        // Not a strict guarantee (two seeds can collide on tiny graphs), but
        // at n >= 16 the random families must not ignore their seed: across
        // four consecutive seeds at least two distinct graphs appear.
        for family in [
            TopologyFamily::RandomTree,
            TopologyFamily::GnpAvgDegree { avg_degree: 8.0 },
            TopologyFamily::UnitDisk { avg_degree: 8.0 },
            TopologyFamily::DegreeCapped { max_degree: 4 },
        ] {
            let graphs: Vec<Graph> = (0..4)
                .map(|i| family.generate(n, seed.wrapping_add(i)).unwrap())
                .collect();
            let all_equal = graphs.windows(2).all(|w| w[0] == w[1]);
            prop_assert!(
                !all_equal,
                "{} ignored its seed at n={n}, base seed {seed}",
                family.name()
            );
        }
    }

    #[test]
    fn parse_round_trips_every_preset(idx in 0usize..TopologyFamily::PRESETS.len()) {
        let family = TopologyFamily::PRESETS[idx];
        prop_assert_eq!(TopologyFamily::parse(family.name()).unwrap(), family);
    }
}

#[test]
fn deterministic_families_ignore_the_seed() {
    // The registry takes a seed for every family; the deterministic shapes
    // must produce identical graphs no matter what it is.
    for family in [
        TopologyFamily::Path,
        TopologyFamily::Cycle,
        TopologyFamily::Star,
        TopologyFamily::Complete,
        TopologyFamily::Grid,
        TopologyFamily::Torus,
        TopologyFamily::Hypercube,
        TopologyFamily::BalancedTree,
        TopologyFamily::Lollipop,
        TopologyFamily::Barbell,
        TopologyFamily::StarOfCliques { clique_size: 5 },
        TopologyFamily::Caterpillar { legs: 2 },
    ] {
        let a = family.generate(40, 1).unwrap();
        let b = family.generate(40, 999).unwrap();
        assert_eq!(a, b, "{} should not depend on the seed", family.name());
    }
}

#[test]
fn extreme_parameters_are_clamped_not_panicking() {
    // Shape parameters that cannot fit in n nodes are clamped to the size
    // budget (n wins), so even usize::MAX round-trips through parse and
    // generate without overflow.
    for input in [
        format!("caterpillar:{}", usize::MAX),
        format!("star_of_cliques:{}", usize::MAX),
        format!("degree_capped:{}", usize::MAX),
    ] {
        let family = TopologyFamily::parse(&input).unwrap();
        let g = family.generate(12, 1).unwrap();
        assert!(algorithms::is_connected(&g), "{input}");
        assert!(g.node_count() <= 24, "{input}: {} nodes", g.node_count());
    }
}

#[test]
fn smallest_request_rounds_up_only_to_the_minimum_shape() {
    // n = 4 is the smallest accepted request; the torus must round up to
    // its 3x3 minimum and everything else stays at <= 2n.
    for family in TopologyFamily::PRESETS {
        let g = family.generate(4, 1).unwrap();
        let bound = if family == TopologyFamily::Torus {
            9
        } else {
            8
        };
        assert!(
            g.node_count() <= bound,
            "{}: {} nodes for a request of 4",
            family.name(),
            g.node_count()
        );
    }
}

#[test]
fn free_function_and_method_agree() {
    for family in TopologyFamily::PRESETS {
        assert_eq!(
            radio_labeling::graph::generators::generate(family, 24, 3).unwrap(),
            family.generate(24, 3).unwrap(),
            "{}",
            family.name()
        );
    }
}
