//! Trace fidelity across the simulator engines, on every topology preset.
//!
//! The event-driven engine skips quiet nodes in its decide pass and — with
//! tracing off — elides whole silent spans; with tracing **on** it must
//! still materialise every round exactly as the per-round engines do. These
//! tests replay a hint-heavy relay protocol and a faulted chaos workload on
//! all 18 [`TopologyFamily::PRESETS`] and pin the parts of the [`Trace`]
//! downstream analyses consume: contiguous round numbering, the
//! `first_receive_rounds_bucketed` completion matrices, and the placement
//! of `NodeEvent::Faulted` markers — byte-identical across all three
//! engines.

use radio_labeling::graph::generators::TopologyFamily;
use radio_labeling::graph::Graph;
use radio_labeling::radio::testing::ChaosNode;
use radio_labeling::radio::trace::NodeEvent;
use radio_labeling::radio::{Action, Engine, FaultPlan, RadioNode, Simulator, StopCondition};
use std::sync::Arc;

/// Every preset instantiated at the same nominal size and seed. Rigid
/// families round the size, so the actual `n` is always read off the graph.
fn preset_graphs() -> Vec<(String, Arc<Graph>)> {
    TopologyFamily::PRESETS
        .iter()
        .map(|fam| {
            let g = fam.generate(40, 11).expect("preset generates connected");
            (format!("{fam:?}"), Arc::new(g))
        })
        .collect()
}

/// A single-source flood with a genuine dormancy hint: the source transmits
/// its hop count once, every first-time receiver relays `hop + 1` exactly
/// once, and relayed nodes park forever. With tracing on the event-driven
/// engine gets no elision — this pins its per-round trace output while the
/// wake-hint frontier machinery (parking, reception wake-ups) is fully
/// engaged.
struct Flood {
    holding: Option<u64>,
    relayed: bool,
}

impl Flood {
    fn network(n: usize) -> Vec<Flood> {
        (0..n)
            .map(|v| Flood {
                holding: (v == 0).then_some(1),
                relayed: false,
            })
            .collect()
    }
}

impl RadioNode for Flood {
    type Msg = u64;
    fn step(&mut self) -> Action<u64> {
        match self.holding.take() {
            Some(hop) if !self.relayed => {
                self.relayed = true;
                Action::Transmit(hop)
            }
            _ => Action::Listen,
        }
    }
    fn receive(&mut self, heard: Option<&u64>) {
        if let Some(hop) = heard {
            if !self.relayed {
                self.holding = Some(hop + 1);
            }
        }
    }
    fn wake_hint(&self) -> u64 {
        if self.holding.is_some() && !self.relayed {
            0
        } else {
            u64::MAX
        }
    }
}

/// Runs `Flood` on one engine with tracing on and returns the simulator.
fn flood_run(graph: &Arc<Graph>, engine: Engine) -> Simulator<Flood> {
    let n = graph.node_count();
    let mut sim = Simulator::new(Arc::clone(graph), Flood::network(n)).with_engine(engine);
    sim.run_until(
        StopCondition::QuietFor {
            quiet: 3,
            cap: 4 * n as u64 + 20,
        },
        |_| false,
    );
    sim
}

#[test]
fn round_numbering_is_contiguous_and_identical_on_all_presets() {
    // With tracing on, elision is off: the trace must contain one record
    // per executed round, numbered 1..=rounds_executed with no gaps, and
    // the records must be byte-identical across engines.
    for (label, graph) in preset_graphs() {
        let reference = flood_run(&graph, Engine::ListenerCentric);
        let rounds = reference.trace().rounds.len() as u64;
        assert!(
            rounds > 0,
            "{label}: flood should execute at least one round"
        );
        for engine in [Engine::TransmitterCentric, Engine::EventDriven] {
            let sim = flood_run(&graph, engine);
            for (i, record) in sim.trace().rounds.iter().enumerate() {
                assert_eq!(
                    record.round,
                    i as u64 + 1,
                    "{label} [{engine:?}]: round numbering has a gap"
                );
            }
            assert_eq!(
                sim.trace().rounds,
                reference.trace().rounds,
                "{label} [{engine:?}]: traces differ"
            );
        }
    }
}

#[test]
fn first_receive_buckets_identical_on_all_presets() {
    // The completion matrices the sweeps derive from traces: bucket the
    // flood's hop-count messages mod 4 and demand the full `[bucket][node]`
    // first-reception matrix matches the reference engine, entry for entry.
    // Cross-check each node's min over buckets against the scalar
    // `first_receive_round` query so the bucketed fast path and the simple
    // query can never drift apart either.
    const BUCKETS: usize = 4;
    for (label, graph) in preset_graphs() {
        let n = graph.node_count();
        let bucket = |m: &u64, emit: &mut dyn FnMut(usize)| {
            emit((*m % BUCKETS as u64) as usize);
        };
        let reference = flood_run(&graph, Engine::ListenerCentric);
        let expected = reference
            .trace()
            .first_receive_rounds_bucketed(n, BUCKETS, bucket);
        for engine in [Engine::TransmitterCentric, Engine::EventDriven] {
            let sim = flood_run(&graph, engine);
            let got = sim
                .trace()
                .first_receive_rounds_bucketed(n, BUCKETS, bucket);
            assert_eq!(
                got, expected,
                "{label} [{engine:?}]: bucket matrices differ"
            );
            for v in 0..n {
                let min_over_buckets = got.iter().filter_map(|row| row[v]).min();
                assert_eq!(
                    min_over_buckets,
                    sim.trace().first_receive_round(v),
                    "{label} [{engine:?}]: node {v} bucket min disagrees with \
                     first_receive_round"
                );
            }
        }
    }
}

#[test]
fn faulted_marker_placement_identical_on_all_presets() {
    // Fault markers are the one trace event the engines synthesise
    // themselves (nodes never see their own crash): under a crash + jam +
    // late-wake plan on a collision-heavy chaos workload, every node's
    // `Faulted` rounds — and the whole trace — must agree across engines,
    // and the victims must actually carry markers.
    for (label, graph) in preset_graphs() {
        let n = graph.node_count();
        let crash_victim = 1 % n;
        let jam_victim = (n / 2).max(2) % n;
        let late_victim = (n - 1).max(3) % n;
        let plan = FaultPlan::none()
            .crash(crash_victim, 7)
            .jam(jam_victim, 4, 5)
            .late_wake(late_victim, 6);
        let run = |engine: Engine| {
            let mut sim = Simulator::new(Arc::clone(&graph), ChaosNode::network(n, 3))
                .with_engine(engine)
                .with_faults(&plan);
            sim.run_until(StopCondition::AfterRounds(40), |_| false);
            sim
        };
        let reference = run(Engine::ListenerCentric);
        for v in [crash_victim, jam_victim, late_victim] {
            assert!(
                !reference.trace().fault_rounds(v).is_empty(),
                "{label}: victim {v} carries no Faulted marker"
            );
        }
        for engine in [Engine::TransmitterCentric, Engine::EventDriven] {
            let sim = run(engine);
            for v in 0..n {
                assert_eq!(
                    sim.trace().fault_rounds(v),
                    reference.trace().fault_rounds(v),
                    "{label} [{engine:?}]: node {v} Faulted placement differs"
                );
            }
            assert_eq!(
                sim.trace().rounds,
                reference.trace().rounds,
                "{label} [{engine:?}]: faulted traces differ"
            );
        }
    }
}

#[test]
fn every_round_event_is_consistent_with_the_recorded_transmitters() {
    // A structural audit of event-driven traces on every preset: each
    // record's Heard/Collision/Silence events must be consistent with the
    // transmitter set recorded in the same round — the same delivery rule
    // the listener-centric engine computes directly.
    for (label, graph) in preset_graphs() {
        let sim = flood_run(&graph, Engine::EventDriven);
        for record in &sim.trace().rounds {
            let transmitters: Vec<usize> = record
                .events
                .iter()
                .enumerate()
                .filter(|(_, e)| matches!(e, NodeEvent::Transmitted(_)))
                .map(|(v, _)| v)
                .collect();
            for (v, event) in record.events.iter().enumerate() {
                let tx_neighbors = graph
                    .neighbors(v)
                    .iter()
                    .filter(|w| transmitters.contains(w))
                    .count();
                match event {
                    NodeEvent::Transmitted(_) => {}
                    NodeEvent::Heard { from, .. } => {
                        assert_eq!(
                            tx_neighbors, 1,
                            "{label} round {}: heard without unique transmitter",
                            record.round
                        );
                        assert!(
                            transmitters.contains(from),
                            "{label} round {}: heard from a non-transmitter",
                            record.round
                        );
                    }
                    NodeEvent::Collision {
                        transmitting_neighbors,
                    } => {
                        assert_eq!(
                            *transmitting_neighbors, tx_neighbors,
                            "{label} round {}: collision fan-in wrong",
                            record.round
                        );
                    }
                    NodeEvent::Silence => {
                        assert_eq!(
                            tx_neighbors, 0,
                            "{label} round {}: silence with transmitting neighbors",
                            record.round
                        );
                    }
                    NodeEvent::Faulted(_) => {
                        panic!("{label}: fault marker in a fault-free run");
                    }
                }
            }
        }
    }
}
