//! Property-based tests of the radio model itself: whatever protocol runs on
//! it, the simulator must deliver messages exactly according to §1.1 of the
//! paper (a listener hears a message iff exactly one neighbour transmits; a
//! transmitter hears nothing; collisions are indistinguishable from silence).
//!
//! The protocol under test transmits pseudo-randomly (from a per-node seed,
//! so it is still a deterministic RadioNode) and records everything it
//! observes; an independent replay of the trace checks the delivery rule.

use proptest::prelude::*;
use radio_labeling::graph::generators;
use radio_labeling::radio::trace::NodeEvent;
use radio_labeling::radio::{Action, RadioNode, Simulator, StopCondition};
use rand::RngCore;
use rand::SeedableRng;

/// A deterministic "chatter" protocol: in each round it transmits its node id
/// with probability ~1/3, driven by a private PRNG seeded from its id.
struct Chatter {
    id: u64,
    rng: rand::rngs::StdRng,
    heard: Vec<Option<u64>>,
}

impl Chatter {
    fn new(id: u64, seed: u64) -> Self {
        Chatter {
            id,
            rng: rand::rngs::StdRng::seed_from_u64(seed ^ (id.wrapping_mul(0x9E3779B97F4A7C15))),
            heard: Vec::new(),
        }
    }
}

impl RadioNode for Chatter {
    type Msg = u64;
    fn step(&mut self) -> Action<u64> {
        if self.rng.next_u32().is_multiple_of(3) {
            Action::Transmit(self.id)
        } else {
            Action::Listen
        }
    }
    fn receive(&mut self, heard: Option<&u64>) {
        self.heard.push(heard.copied());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn delivery_follows_the_single_transmitter_rule(
        n in 4usize..40,
        p in 0.05f64..0.6,
        seed in any::<u64>(),
        rounds in 5u64..40,
    ) {
        let g = generators::gnp_connected(n, p, seed).unwrap();
        let nodes: Vec<Chatter> = (0..n as u64).map(|v| Chatter::new(v, seed)).collect();
        let mut sim = Simulator::new(g.clone(), nodes);
        sim.run_until(StopCondition::AfterRounds(rounds), |_| false);

        for record in &sim.trace().rounds {
            // Reconstruct the transmitter set independently.
            let transmitters: Vec<usize> = record
                .events
                .iter()
                .enumerate()
                .filter(|(_, e)| matches!(e, NodeEvent::Transmitted(_)))
                .map(|(v, _)| v)
                .collect();
            for (v, event) in record.events.iter().enumerate() {
                let tx_neighbors: Vec<usize> = g
                    .neighbors(v)
                    .iter()
                    .copied()
                    .filter(|w| transmitters.contains(w))
                    .collect();
                match event {
                    NodeEvent::Transmitted(_) => {
                        // A transmitter never receives anything this round —
                        // there is nothing to check in the trace beyond the
                        // fact that it carries no Heard event, which the enum
                        // already guarantees.
                    }
                    NodeEvent::Heard { from, message } => {
                        prop_assert_eq!(tx_neighbors.len(), 1, "heard without unique transmitter");
                        prop_assert_eq!(tx_neighbors[0], *from);
                        prop_assert_eq!(*message as usize, *from, "chatter transmits its own id");
                    }
                    NodeEvent::Collision { transmitting_neighbors } => {
                        prop_assert!(tx_neighbors.len() >= 2);
                        prop_assert_eq!(*transmitting_neighbors, tx_neighbors.len());
                    }
                    NodeEvent::Silence => {
                        prop_assert!(tx_neighbors.is_empty());
                    }
                    NodeEvent::Faulted(_) => {
                        prop_assert!(false, "fault marker in a fault-free run");
                    }
                }
            }
        }
    }

    #[test]
    fn listeners_observe_exactly_once_per_round(
        n in 4usize..30,
        seed in any::<u64>(),
        rounds in 5u64..30,
    ) {
        // Every listening round produces exactly one `receive` callback, so a
        // node's observation log length equals its number of listening rounds.
        let g = generators::gnp_connected(n, 0.2, seed).unwrap();
        let nodes: Vec<Chatter> = (0..n as u64).map(|v| Chatter::new(v, seed)).collect();
        let mut sim = Simulator::new(g, nodes);
        sim.run_until(StopCondition::AfterRounds(rounds), |_| false);
        for v in 0..n {
            let transmit_rounds = sim.trace().transmit_rounds(v).len() as u64;
            let observations = sim.nodes()[v].heard.len() as u64;
            prop_assert_eq!(transmit_rounds + observations, rounds, "node {}", v);
        }
    }

    #[test]
    fn collision_and_silence_look_identical_to_the_node(
        n in 4usize..30,
        seed in any::<u64>(),
    ) {
        // The node-facing observation for a collision is exactly `None`, the
        // same as silence: verify by cross-checking the trace against what the
        // protocol recorded.
        let g = generators::gnp_connected(n, 0.25, seed).unwrap();
        let nodes: Vec<Chatter> = (0..n as u64).map(|v| Chatter::new(v, seed)).collect();
        let mut sim = Simulator::new(g, nodes);
        sim.run_until(StopCondition::AfterRounds(20), |_| false);
        for v in 0..n {
            let mut observed = sim.nodes()[v].heard.iter();
            for record in &sim.trace().rounds {
                match &record.events[v] {
                    NodeEvent::Transmitted(_) => {}
                    NodeEvent::Heard { message, .. } => {
                        prop_assert_eq!(observed.next().copied().flatten(), Some(*message));
                    }
                    NodeEvent::Collision { .. } | NodeEvent::Silence => {
                        prop_assert_eq!(observed.next().copied().flatten(), None);
                    }
                    NodeEvent::Faulted(_) => {
                        prop_assert!(false, "fault marker in a fault-free run");
                    }
                }
            }
        }
    }
}
