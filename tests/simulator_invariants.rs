//! Property-based tests of the radio model itself: whatever protocol runs on
//! it, the simulator must deliver messages exactly according to §1.1 of the
//! paper (a listener hears a message iff exactly one neighbour transmits; a
//! transmitter hears nothing; collisions are indistinguishable from silence).
//!
//! The protocol under test transmits pseudo-randomly (from a per-node seed,
//! so it is still a deterministic RadioNode) and records everything it
//! observes; an independent replay of the trace checks the delivery rule.

use proptest::prelude::*;
use radio_labeling::broadcast::session::{Scheme, Session, StopPolicy};
use radio_labeling::graph::{generators, Graph};
use radio_labeling::radio::stats::ExecutionStats;
use radio_labeling::radio::trace::NodeEvent;
use radio_labeling::radio::{Action, Engine, RadioNode, Simulator, StopCondition};
use rand::RngCore;
use rand::SeedableRng;
use std::sync::Arc;

/// A deterministic "chatter" protocol: in each round it transmits its node id
/// with probability ~1/3, driven by a private PRNG seeded from its id.
struct Chatter {
    id: u64,
    rng: rand::rngs::StdRng,
    heard: Vec<Option<u64>>,
}

impl Chatter {
    fn new(id: u64, seed: u64) -> Self {
        Chatter {
            id,
            rng: rand::rngs::StdRng::seed_from_u64(seed ^ (id.wrapping_mul(0x9E3779B97F4A7C15))),
            heard: Vec::new(),
        }
    }
}

impl RadioNode for Chatter {
    type Msg = u64;
    fn step(&mut self) -> Action<u64> {
        if self.rng.next_u32().is_multiple_of(3) {
            Action::Transmit(self.id)
        } else {
            Action::Listen
        }
    }
    fn receive(&mut self, heard: Option<&u64>) {
        self.heard.push(heard.copied());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn delivery_follows_the_single_transmitter_rule(
        n in 4usize..40,
        p in 0.05f64..0.6,
        seed in any::<u64>(),
        rounds in 5u64..40,
    ) {
        let g = generators::gnp_connected(n, p, seed).unwrap();
        let nodes: Vec<Chatter> = (0..n as u64).map(|v| Chatter::new(v, seed)).collect();
        let mut sim = Simulator::new(g.clone(), nodes);
        sim.run_until(StopCondition::AfterRounds(rounds), |_| false);

        for record in &sim.trace().rounds {
            // Reconstruct the transmitter set independently.
            let transmitters: Vec<usize> = record
                .events
                .iter()
                .enumerate()
                .filter(|(_, e)| matches!(e, NodeEvent::Transmitted(_)))
                .map(|(v, _)| v)
                .collect();
            for (v, event) in record.events.iter().enumerate() {
                let tx_neighbors: Vec<usize> = g
                    .neighbors(v)
                    .iter()
                    .copied()
                    .filter(|w| transmitters.contains(w))
                    .collect();
                match event {
                    NodeEvent::Transmitted(_) => {
                        // A transmitter never receives anything this round —
                        // there is nothing to check in the trace beyond the
                        // fact that it carries no Heard event, which the enum
                        // already guarantees.
                    }
                    NodeEvent::Heard { from, message } => {
                        prop_assert_eq!(tx_neighbors.len(), 1, "heard without unique transmitter");
                        prop_assert_eq!(tx_neighbors[0], *from);
                        prop_assert_eq!(*message as usize, *from, "chatter transmits its own id");
                    }
                    NodeEvent::Collision { transmitting_neighbors } => {
                        prop_assert!(tx_neighbors.len() >= 2);
                        prop_assert_eq!(*transmitting_neighbors, tx_neighbors.len());
                    }
                    NodeEvent::Silence => {
                        prop_assert!(tx_neighbors.is_empty());
                    }
                    NodeEvent::Faulted(_) => {
                        prop_assert!(false, "fault marker in a fault-free run");
                    }
                }
            }
        }
    }

    #[test]
    fn listeners_observe_exactly_once_per_round(
        n in 4usize..30,
        seed in any::<u64>(),
        rounds in 5u64..30,
    ) {
        // Every listening round produces exactly one `receive` callback, so a
        // node's observation log length equals its number of listening rounds.
        let g = generators::gnp_connected(n, 0.2, seed).unwrap();
        let nodes: Vec<Chatter> = (0..n as u64).map(|v| Chatter::new(v, seed)).collect();
        let mut sim = Simulator::new(g, nodes);
        sim.run_until(StopCondition::AfterRounds(rounds), |_| false);
        for v in 0..n {
            let transmit_rounds = sim.trace().transmit_rounds(v).len() as u64;
            let observations = sim.nodes()[v].heard.len() as u64;
            prop_assert_eq!(transmit_rounds + observations, rounds, "node {}", v);
        }
    }

    #[test]
    fn collision_and_silence_look_identical_to_the_node(
        n in 4usize..30,
        seed in any::<u64>(),
    ) {
        // The node-facing observation for a collision is exactly `None`, the
        // same as silence: verify by cross-checking the trace against what the
        // protocol recorded.
        let g = generators::gnp_connected(n, 0.25, seed).unwrap();
        let nodes: Vec<Chatter> = (0..n as u64).map(|v| Chatter::new(v, seed)).collect();
        let mut sim = Simulator::new(g, nodes);
        sim.run_until(StopCondition::AfterRounds(20), |_| false);
        for v in 0..n {
            let mut observed = sim.nodes()[v].heard.iter();
            for record in &sim.trace().rounds {
                match &record.events[v] {
                    NodeEvent::Transmitted(_) => {}
                    NodeEvent::Heard { message, .. } => {
                        prop_assert_eq!(observed.next().copied().flatten(), Some(*message));
                    }
                    NodeEvent::Collision { .. } | NodeEvent::Silence => {
                        prop_assert_eq!(observed.next().copied().flatten(), None);
                    }
                    NodeEvent::Faulted(_) => {
                        prop_assert!(false, "fault marker in a fault-free run");
                    }
                }
            }
        }
    }
}

/// A protocol with a genuine dormancy hint, used to fuzz the event-driven
/// engine's silent-span elision: the source transmits once, relays ripple
/// the message outward one hop per round (incrementing it so hops are
/// distinguishable), and every node that has relayed parks forever.
struct Ripple {
    holding: Option<u64>,
    relayed: bool,
    receptions: Vec<u64>,
}

impl Ripple {
    fn new(is_source: bool) -> Self {
        Ripple {
            holding: if is_source { Some(1) } else { None },
            relayed: false,
            receptions: Vec::new(),
        }
    }

    fn network(n: usize) -> Vec<Ripple> {
        (0..n).map(|v| Ripple::new(v == 0)).collect()
    }
}

impl RadioNode for Ripple {
    type Msg = u64;
    fn step(&mut self) -> Action<u64> {
        match self.holding.take() {
            Some(m) if !self.relayed => {
                self.relayed = true;
                Action::Transmit(m)
            }
            _ => Action::Listen,
        }
    }
    fn receive(&mut self, heard: Option<&u64>) {
        if let Some(m) = heard {
            self.receptions.push(*m);
            if !self.relayed {
                self.holding = Some(m + 1);
            }
        }
    }
    fn wake_hint(&self) -> u64 {
        if self.holding.is_some() && !self.relayed {
            0 // about to relay
        } else {
            u64::MAX // parked until it hears something
        }
    }
}

/// The three proptest topology families, by discriminant.
fn build_topology(kind: u32, n: usize, seed: u64) -> Graph {
    match kind % 3 {
        0 => generators::path(n),
        1 => generators::random_tree(n, seed),
        _ => generators::gnp_connected(n, 0.18, seed).unwrap(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn engines_agree_on_random_scheme_stop_policy_triples(
        kind in 0u32..3,
        n in 6usize..28,
        seed in any::<u64>(),
        scheme_idx in 0usize..Scheme::GENERAL.len(),
        stop_kind in 0u32..3,
        quiet in 1u64..8,
    ) {
        // Random (topology, scheme, stop-policy) triples: `rounds_executed`
        // and the full ExecutionStats must be identical across all three
        // engines, whichever way the run is asked to stop.
        let g = Arc::new(build_topology(kind, n, seed));
        let scheme = Scheme::GENERAL[scheme_idx];
        let stop = match stop_kind % 3 {
            0 => StopPolicy::Auto,
            1 => StopPolicy::RunToCap,
            _ => StopPolicy::QuietFor(quiet),
        };
        let build = |engine: Engine| {
            Session::builder(scheme, Arc::clone(&g))
                .source(seed as usize % n)
                .message(5)
                .stop(stop)
                .engine(engine)
                .build()
                .unwrap()
        };
        let reference = build(Engine::ListenerCentric).run();
        for engine in [Engine::TransmitterCentric, Engine::EventDriven] {
            let report = build(engine).run();
            prop_assert_eq!(
                &report, &reference,
                "{} {:?} [{:?}]", scheme.name(), stop, engine
            );
        }
    }

    #[test]
    fn quiet_thresholds_agree_with_elided_spans(
        kind in 0u32..3,
        n in 4usize..32,
        seed in any::<u64>(),
        quiet in 1u64..24,
        cap in 1u64..90,
    ) {
        // The likeliest off-by-one: a QuietFor threshold landing inside, at
        // the edge of, or beyond an elided silent span. The Ripple protocol
        // parks every node after one relay, so with tracing off the
        // event-driven engine elides nearly the whole quiet tail; outcomes
        // (rounds_executed, went_quiet) and every node's reception log must
        // still match the per-round engines exactly.
        let g = build_topology(kind, n, seed);
        let stop = StopCondition::QuietFor { quiet, cap };
        let mut reference = Simulator::new(g.clone(), Ripple::network(n))
            .with_engine(Engine::ListenerCentric)
            .without_trace();
        let expected = reference.run_until(stop, |_| false);
        for engine in [Engine::TransmitterCentric, Engine::EventDriven] {
            let mut sim = Simulator::new(g.clone(), Ripple::network(n))
                .with_engine(engine)
                .without_trace();
            let outcome = sim.run_until(stop, |_| false);
            prop_assert_eq!(&outcome, &expected, "quiet={} cap={} [{:?}]", quiet, cap, engine);
            for (v, (x, y)) in sim.nodes().iter().zip(reference.nodes()).enumerate() {
                prop_assert_eq!(
                    &x.receptions, &y.receptions,
                    "quiet={} cap={} [{:?}]: node {} receptions", quiet, cap, engine, v
                );
            }
        }
    }

    #[test]
    fn quiet_or_cap_and_stats_agree_across_engines(
        kind in 0u32..3,
        n in 4usize..24,
        seed in any::<u64>(),
        cap in 1u64..60,
    ) {
        // With tracing on (elision disabled, every round materialised), the
        // traces must be byte-identical, so the derived ExecutionStats are
        // too — and `went_quiet` must agree for the 1-round quiet policy.
        let g = build_topology(kind, n, seed);
        let mut reference =
            Simulator::new(g.clone(), Ripple::network(n)).with_engine(Engine::ListenerCentric);
        let expected = reference.run_until(StopCondition::QuietOrCap(cap), |_| false);
        let expected_stats = ExecutionStats::from_trace(reference.trace());
        for engine in [Engine::TransmitterCentric, Engine::EventDriven] {
            let mut sim = Simulator::new(g.clone(), Ripple::network(n)).with_engine(engine);
            let outcome = sim.run_until(StopCondition::QuietOrCap(cap), |_| false);
            prop_assert_eq!(&outcome, &expected, "cap={} [{:?}]", cap, engine);
            prop_assert_eq!(outcome.went_quiet, expected.went_quiet);
            prop_assert_eq!(
                &ExecutionStats::from_trace(sim.trace()), &expected_stats,
                "cap={} [{:?}]: stats", cap, engine
            );
            prop_assert_eq!(
                sim.trace().rounds.clone(), reference.trace().rounds.clone(),
                "cap={} [{:?}]: trace", cap, engine
            );
        }
    }
}
